//! Scenario ↔ wire-format conversion for the serving daemon.
//!
//! `star-serve` answers line-delimited JSON queries over TCP; this module is
//! the shared vocabulary between that daemon, its load generator and any
//! other remote caller: a [`WireScenario`] is the subset of a [`Scenario`]
//! that can be spelled in a query — one of the four *named* topology families
//! at a given size, a discipline, `V` and `M`, under uniform traffic — plus
//! the canonical JSON encoding of a [`PointEstimate`] answer.
//!
//! Two properties matter here:
//!
//! * **Identity.** [`WireScenario::fingerprint`] folds exactly the fields
//!   that determine a model answer into a [`RunFingerprint`], so the
//!   daemon's caches key on configuration identity — the same scheme (and
//!   the same hex spelling) that stamps shard partial headers.
//! * **Byte stability.** [`encode_estimate`] emits the result payload with a
//!   fixed field order and Rust's shortest round-trip float formatting, so
//!   "the daemon answers byte-identically to the batch backend" is a
//!   testable contract on strings, not a numerical hand-wave.
//!
//! Scenarios outside the wire vocabulary (plugged-in topologies with no
//! family name, non-uniform traffic) are not a protocol error but an
//! [`WireError::Unencodable`] one: batch evaluation still covers them, they
//! just cannot be requested remotely.

use std::fmt;
use std::sync::Arc;

use serde_json::Value;
use star_exec::RunFingerprint;
use star_graph::{Hypercube, StarGraph, Topology};

use crate::evaluator::PointEstimate;
use crate::scenario::{Discipline, Scenario, TopologyKind};

/// Why a wire query (or a scenario headed for the wire) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A required field is absent from the query object.
    MissingField(&'static str),
    /// A field is present but has the wrong JSON shape.
    BadField {
        /// The offending field name.
        field: &'static str,
        /// What the protocol expects there.
        expected: &'static str,
    },
    /// The `topology` name is not one of the four named families.
    UnknownTopology(String),
    /// The `discipline` name is not a known routing discipline.
    UnknownDiscipline(String),
    /// The size is outside the family's constructible range.
    SizeOutOfRange {
        /// The requested family.
        kind: TopologyKind,
        /// The rejected size.
        size: u64,
    },
    /// The scenario cannot be spelled on the wire at all (custom topology,
    /// non-uniform traffic).
    Unencodable(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingField(field) => write!(f, "missing field `{field}`"),
            Self::BadField { field, expected } => {
                write!(f, "field `{field}` must be {expected}")
            }
            Self::UnknownTopology(name) => {
                write!(f, "unknown topology `{name}` (star|hypercube|torus|ring)")
            }
            Self::UnknownDiscipline(name) => {
                write!(f, "unknown discipline `{name}` (enhanced-nbc|nbc|nhop|deterministic)")
            }
            Self::SizeOutOfRange { kind, size } => {
                write!(f, "size {size} out of range for the {} family", kind.name())
            }
            Self::Unencodable(what) => write!(f, "not expressible on the wire: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The wire spelling of a scenario: one of the four named topology families
/// with the model-relevant knobs.  Replication fields (`replicates`,
/// `seed_base`) are deliberately absent — the wire serves the deterministic
/// analytical model, whose answer they do not affect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireScenario {
    /// Topology family.
    pub kind: TopologyKind,
    /// Family size parameter (`n` for `S_n`, `d` for `Q_d`, `k` otherwise).
    pub size: usize,
    /// Routing discipline.
    pub discipline: Discipline,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: usize,
}

/// Whether a family can construct the size at all (the topology
/// constructors `panic!` out of range, which a daemon must never do on
/// behalf of a remote caller).
fn size_in_range(kind: TopologyKind, size: u64) -> bool {
    match kind {
        TopologyKind::Star => (2..=StarGraph::MAX_TABLED_SYMBOLS as u64).contains(&size),
        TopologyKind::Hypercube => (1..=Hypercube::MAX_DIMS as u64).contains(&size),
        TopologyKind::Torus | TopologyKind::Ring => size >= 4 && size % 2 == 0,
    }
}

impl WireScenario {
    /// A range-checked constructor: the same validation [`Self::from_value`]
    /// applies to remote queries, for callers assembling wire scenarios
    /// programmatically (the daemon's `--prewarm` list parser).
    ///
    /// # Errors
    /// [`WireError::SizeOutOfRange`] outside the family's constructible
    /// range, [`WireError::BadField`] for zero `vc` or `m`.
    pub fn checked(
        kind: TopologyKind,
        size: usize,
        discipline: Discipline,
        virtual_channels: usize,
        message_length: usize,
    ) -> Result<Self, WireError> {
        if !size_in_range(kind, size as u64) {
            return Err(WireError::SizeOutOfRange { kind, size: size as u64 });
        }
        if virtual_channels == 0 {
            return Err(WireError::BadField { field: "vc", expected: "a positive integer" });
        }
        if message_length == 0 {
            return Err(WireError::BadField { field: "m", expected: "a positive integer" });
        }
        Ok(Self { kind, size, discipline, virtual_channels, message_length })
    }

    /// Decodes the scenario fields of a query object: `topology` (required),
    /// `size` (defaults to the family's conventional size), `discipline`
    /// (defaults to `enhanced-nbc`), `vc` (defaults to 6) and `m` (defaults
    /// to 32).
    ///
    /// # Errors
    /// Any missing/misshapen field, unknown name, or out-of-range size is a
    /// [`WireError`] — never a panic, whatever the remote caller sent.
    pub fn from_value(value: &Value) -> Result<Self, WireError> {
        let topology = value
            .get("topology")
            .ok_or(WireError::MissingField("topology"))?
            .as_str()
            .ok_or(WireError::BadField { field: "topology", expected: "a string" })?;
        let kind = TopologyKind::parse(topology)
            .ok_or_else(|| WireError::UnknownTopology(topology.to_string()))?;
        let size = match value.get("size") {
            None => kind.default_size() as u64,
            Some(v) => v
                .as_u64()
                .ok_or(WireError::BadField { field: "size", expected: "a non-negative integer" })?,
        };
        if !size_in_range(kind, size) {
            return Err(WireError::SizeOutOfRange { kind, size });
        }
        let discipline = match value.get("discipline") {
            None => Discipline::EnhancedNbc,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or(WireError::BadField { field: "discipline", expected: "a string" })?;
                Discipline::parse(name)
                    .ok_or_else(|| WireError::UnknownDiscipline(name.to_string()))?
            }
        };
        let positive = |field: &'static str, default: u64| -> Result<u64, WireError> {
            match value.get(field) {
                None => Ok(default),
                Some(v) => match v.as_u64() {
                    Some(n) if n >= 1 => Ok(n),
                    _ => Err(WireError::BadField { field, expected: "a positive integer" }),
                },
            }
        };
        Ok(Self {
            kind,
            size: size as usize,
            discipline,
            virtual_channels: positive("vc", 6)? as usize,
            message_length: positive("m", 32)? as usize,
        })
    }

    /// The wire spelling of a batch scenario.
    ///
    /// # Errors
    /// [`WireError::Unencodable`] for scenarios outside the wire vocabulary:
    /// non-uniform traffic, or a plugged-in topology whose name is not one
    /// of the four family spellings (`S<n>`, `Q<d>`, `T<k>`, `R<k>`).
    pub fn from_scenario(scenario: &Scenario) -> Result<Self, WireError> {
        if scenario.pattern != star_sim::TrafficPattern::Uniform {
            return Err(WireError::Unencodable(format!(
                "traffic pattern {:?} (the wire serves uniform traffic only)",
                scenario.pattern
            )));
        }
        let label = scenario.network_label();
        let kind = match label.chars().next() {
            Some('S') => TopologyKind::Star,
            Some('Q') => TopologyKind::Hypercube,
            Some('T') => TopologyKind::Torus,
            Some('R') => TopologyKind::Ring,
            _ => return Err(WireError::Unencodable(format!("topology `{label}`"))),
        };
        let size: usize = match label[1..].parse() {
            Ok(n) if kind.label(n) == label => n,
            _ => return Err(WireError::Unencodable(format!("topology `{label}`"))),
        };
        Ok(Self {
            kind,
            size,
            discipline: scenario.discipline,
            virtual_channels: scenario.virtual_channels,
            message_length: scenario.message_length,
        })
    }

    /// The conventional network name (`"S5"`, `"Q7"`, …).
    #[must_use]
    pub fn network_label(&self) -> String {
        self.kind.label(self.size)
    }

    /// Rebuilds the batch scenario, constructing a fresh topology.
    ///
    /// # Panics
    /// Never for values built by the checked constructors above — the size
    /// was validated against the family's constructible range.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario_on(self.kind.topology(self.size))
    }

    /// Rebuilds the batch scenario on an existing topology value — the hook
    /// the daemon's topology cache injects through, so a thousand queries
    /// against `S7` share one neighbour table.
    ///
    /// # Panics
    /// Panics if the supplied topology is not this wire scenario's network
    /// (compared by name).
    #[must_use]
    pub fn scenario_on(&self, topology: Arc<dyn Topology>) -> Scenario {
        assert_eq!(
            topology.name(),
            self.network_label(),
            "topology value does not match the wire scenario"
        );
        Scenario::on(topology)
            .with_discipline(self.discipline)
            .with_virtual_channels(self.virtual_channels)
            .with_message_length(self.message_length)
    }

    /// The configuration identity of this wire scenario: a fingerprint over
    /// exactly the fields that determine a model answer, under a versioned
    /// domain tag.  This is what the daemon's caches key on, spelled with
    /// the same [`RunFingerprint`] hex used in shard partial headers.
    #[must_use]
    pub fn fingerprint(&self) -> RunFingerprint {
        let mut fp = RunFingerprint::new();
        fp.add_str("wire/v1");
        fp.add_str(&self.network_label());
        fp.add_str(self.discipline.name());
        fp.add_u64(self.virtual_channels as u64);
        fp.add_u64(self.message_length as u64);
        fp
    }

    /// The scenario fields as a JSON object fragment, in canonical order —
    /// what the load generator splices into its query lines.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("topology".to_string(), Value::from(self.kind.name())),
            ("size".to_string(), Value::from(self.size)),
            ("discipline".to_string(), Value::from(self.discipline.name())),
            ("vc".to_string(), Value::from(self.virtual_channels)),
            ("m".to_string(), Value::from(self.message_length)),
        ])
    }
}

/// The configuration identity of a batch scenario — shorthand for
/// [`WireScenario::from_scenario`] + [`WireScenario::fingerprint`].
///
/// # Errors
/// As [`WireScenario::from_scenario`].
pub fn scenario_fingerprint(scenario: &Scenario) -> Result<RunFingerprint, WireError> {
    Ok(WireScenario::from_scenario(scenario)?.fingerprint())
}

/// The pinned serving configuration pool: all four families, three
/// disciplines, everything inside the analytical model's validated ranges.
/// Order matters — the `star-load` generator draws earlier entries more
/// often, and the daemon's `--prewarm pool` list solves exactly these
/// configurations before opening its listener.
#[must_use]
pub fn default_config_pool() -> Vec<WireScenario> {
    let wire = |kind, size, discipline| WireScenario {
        kind,
        size,
        discipline,
        virtual_channels: 6,
        message_length: 32,
    };
    vec![
        wire(TopologyKind::Star, 5, Discipline::EnhancedNbc),
        wire(TopologyKind::Star, 6, Discipline::EnhancedNbc),
        wire(TopologyKind::Hypercube, 7, Discipline::EnhancedNbc),
        wire(TopologyKind::Hypercube, 5, Discipline::Nbc),
        wire(TopologyKind::Torus, 8, Discipline::Deterministic),
        wire(TopologyKind::Ring, 8, Discipline::NHop),
    ]
}

/// The model-predicted saturation rate of a scenario, on any topology —
/// the bisection the model-only harness binaries and the serving layer use
/// to pick rate grids that cover the whole latency curve up to the knee.
/// Star and hypercube scenarios use the closed-form solvers; anything else
/// goes through the generic [`star_core::TraversalSpectrum`].
///
/// # Panics
/// Panics if the analytical model does not cover the scenario, or if the
/// scenario's parameters are out of the model's range (the panic message
/// carries the underlying config error, e.g. too few virtual channels for
/// the topology's escape-level minimum).
#[must_use]
pub fn model_saturation_rate(scenario: &Scenario, tolerance: f64) -> f64 {
    let params: star_core::ModelParams = match scenario.model_params(0.0) {
        Ok(Some(params)) => params,
        Err(e) => panic!("invalid model scenario {}: {e}", scenario.label()),
        Ok(None) => {
            panic!("the analytical model does not cover scenario {}", scenario.label())
        }
    };
    let topology = scenario.topology();
    if let Some(star) = topology.as_any().downcast_ref::<StarGraph>() {
        let config =
            params.star_config(star.symbols()).expect("star scenarios map to modelled disciplines");
        star_core::saturation_rate(config, tolerance)
    } else if let Some(cube) = topology.as_any().downcast_ref::<Hypercube>() {
        star_core::hypercube_saturation_rate(params.hypercube_config(cube.dims()), tolerance)
    } else {
        let spectrum = Arc::new(star_core::TraversalSpectrum::new(topology.as_ref()));
        star_core::spectrum_saturation_rate(params, &spectrum, tolerance)
    }
}

/// The saturation-scaled serving rate grid of a scenario: `steps` rates
/// placed between 20% and 85% of the model-predicted saturation rate.  This
/// is the grid `star-load` draws its queries from *and* the grid the
/// daemon's prewarmer solves — the two must agree to the bit for prewarmed
/// entries to answer load-generator traffic verbatim, which is why the
/// formula lives here once.
///
/// # Panics
/// As [`model_saturation_rate`] — callers must validate
/// [`Scenario::model_params`] first when the scenario came from outside.
#[must_use]
pub fn load_rate_grid(scenario: &Scenario, steps: usize) -> Vec<f64> {
    let saturation = model_saturation_rate(scenario, 1e-5);
    let steps = steps.max(1);
    (0..steps)
        .map(|i| {
            let t = i as f64 / steps as f64;
            saturation * (0.20 + 0.65 * t)
        })
        .collect()
}

/// Encodes a model answer as the canonical wire payload:
/// `{"latency":…,"saturated":…,"iterations":…}` with `latency` null beyond
/// saturation and `iterations` null for non-model backends.  Field order is
/// fixed and floats use Rust's shortest round-trip formatting, so two
/// estimates are byte-equal here exactly when their headline numbers are
/// bit-equal — the string the daemon's byte-identity contract is stated on.
#[must_use]
pub fn encode_estimate(estimate: &PointEstimate) -> String {
    let latency = estimate.latency().map_or(Value::Null, Value::from);
    let iterations = estimate.iterations().map_or(Value::Null, Value::from);
    Value::Object(vec![
        ("latency".to_string(), latency),
        ("saturated".to_string(), Value::from(estimate.saturated)),
        ("iterations".to_string(), iterations),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluator, ModelBackend};

    fn decode(json: &str) -> Result<WireScenario, WireError> {
        WireScenario::from_value(&serde_json::from_str(json).unwrap())
    }

    #[test]
    fn decodes_full_and_defaulted_queries() {
        let full =
            decode(r#"{"topology":"star","size":5,"discipline":"enhanced-nbc","vc":6,"m":32}"#)
                .unwrap();
        assert_eq!(full.network_label(), "S5");
        assert_eq!(full.scenario().label(), "S5/enhanced-nbc/V6/M32");
        // omitted knobs take the paper's defaults, size the family's
        let bare = decode(r#"{"topology":"torus"}"#).unwrap();
        assert_eq!(bare.network_label(), "T8");
        assert_eq!(bare.virtual_channels, 6);
        assert_eq!(bare.message_length, 32);
        assert_eq!(bare.discipline, Discipline::EnhancedNbc);
    }

    #[test]
    fn rejects_malformed_queries_without_panicking() {
        assert_eq!(decode(r#"{}"#), Err(WireError::MissingField("topology")));
        assert_eq!(
            decode(r#"{"topology":7}"#),
            Err(WireError::BadField { field: "topology", expected: "a string" })
        );
        assert_eq!(
            decode(r#"{"topology":"mesh"}"#),
            Err(WireError::UnknownTopology("mesh".to_string()))
        );
        assert_eq!(
            decode(r#"{"topology":"star","discipline":"xy"}"#),
            Err(WireError::UnknownDiscipline("xy".to_string()))
        );
        assert_eq!(
            decode(r#"{"topology":"star","size":-3}"#),
            Err(WireError::BadField { field: "size", expected: "a non-negative integer" })
        );
        assert_eq!(
            decode(r#"{"topology":"star","vc":0}"#),
            Err(WireError::BadField { field: "vc", expected: "a positive integer" })
        );
        // constructor panics become protocol errors
        assert_eq!(
            decode(r#"{"topology":"star","size":40}"#),
            Err(WireError::SizeOutOfRange { kind: TopologyKind::Star, size: 40 })
        );
        assert_eq!(
            decode(r#"{"topology":"ring","size":7}"#),
            Err(WireError::SizeOutOfRange { kind: TopologyKind::Ring, size: 7 })
        );
        // every error renders a human-readable message
        for e in [
            decode(r#"{}"#).unwrap_err(),
            decode(r#"{"topology":"mesh"}"#).unwrap_err(),
            decode(r#"{"topology":"ring","size":7}"#).unwrap_err(),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn round_trips_through_scenarios_and_values() {
        for kind in TopologyKind::ALL {
            let wire = WireScenario {
                kind,
                size: kind.default_size(),
                discipline: Discipline::Nbc,
                virtual_channels: 7,
                message_length: 16,
            };
            assert_eq!(WireScenario::from_scenario(&wire.scenario()), Ok(wire));
            assert_eq!(WireScenario::from_value(&wire.to_value()), Ok(wire));
        }
    }

    #[test]
    fn rejects_unencodable_scenarios() {
        let hot = star_sim::TrafficPattern::HotSpot { node: 0, fraction: 0.2 };
        assert!(matches!(
            WireScenario::from_scenario(&Scenario::star(5).with_pattern(hot)),
            Err(WireError::Unencodable(_))
        ));
        assert!(scenario_fingerprint(&Scenario::star(5)).is_ok());
    }

    #[test]
    fn checked_constructor_applies_the_wire_validation() {
        let ok = WireScenario::checked(TopologyKind::Star, 5, Discipline::Nbc, 6, 32).unwrap();
        assert_eq!(ok.network_label(), "S5");
        assert_eq!(
            WireScenario::checked(TopologyKind::Star, 40, Discipline::Nbc, 6, 32),
            Err(WireError::SizeOutOfRange { kind: TopologyKind::Star, size: 40 })
        );
        assert_eq!(
            WireScenario::checked(TopologyKind::Ring, 8, Discipline::NHop, 0, 32),
            Err(WireError::BadField { field: "vc", expected: "a positive integer" })
        );
        assert_eq!(
            WireScenario::checked(TopologyKind::Ring, 8, Discipline::NHop, 6, 0),
            Err(WireError::BadField { field: "m", expected: "a positive integer" })
        );
    }

    #[test]
    fn pool_configs_are_modelled_and_grids_cover_the_curve_below_the_knee() {
        let pool = default_config_pool();
        assert!(pool.len() >= 4, "the pool spans the families");
        for wire in &pool {
            let scenario = wire.scenario();
            assert!(matches!(scenario.model_params(0.001), Ok(Some(_))), "{}", scenario.label());
            let grid = load_rate_grid(&scenario, 5);
            assert_eq!(grid.len(), 5);
            let saturation = model_saturation_rate(&scenario, 1e-5);
            assert!(grid.windows(2).all(|w| w[0] < w[1]), "grids ascend");
            assert!(grid[0] > 0.0 && grid[4] < saturation, "grid stays below the knee");
            // the grid is a pure function of (scenario, steps): prewarming
            // and load generation land on bit-identical rates
            assert_eq!(grid, load_rate_grid(&scenario, 5));
        }
    }

    #[test]
    fn fingerprint_keys_on_exactly_the_model_relevant_fields() {
        let base = decode(r#"{"topology":"star","size":5}"#).unwrap();
        let same = WireScenario::from_scenario(
            // replication knobs do not move the fingerprint: the model's
            // answer ignores them
            &Scenario::star(5).with_replicates(8).with_seed_base(42),
        )
        .unwrap();
        assert_eq!(base.fingerprint().finish(), same.fingerprint().finish());
        assert_eq!(
            scenario_fingerprint(&Scenario::star(5)).unwrap().to_hex(),
            base.fingerprint().to_hex()
        );
        let mut variants = vec![base.fingerprint().finish()];
        variants.push(decode(r#"{"topology":"star","size":6}"#).unwrap().fingerprint().finish());
        variants
            .push(decode(r#"{"topology":"hypercube","size":5}"#).unwrap().fingerprint().finish());
        variants.push(
            decode(r#"{"topology":"star","size":5,"discipline":"nbc"}"#)
                .unwrap()
                .fingerprint()
                .finish(),
        );
        variants
            .push(decode(r#"{"topology":"star","size":5,"vc":7}"#).unwrap().fingerprint().finish());
        variants
            .push(decode(r#"{"topology":"star","size":5,"m":64}"#).unwrap().fingerprint().finish());
        variants.sort_unstable();
        variants.dedup();
        assert_eq!(variants.len(), 6, "every knob must move the fingerprint");
    }

    #[test]
    fn scenario_on_shares_the_injected_topology_and_checks_it() {
        let wire = decode(r#"{"topology":"torus","size":8}"#).unwrap();
        let topology = TopologyKind::Torus.topology(8);
        let scenario = wire.scenario_on(Arc::clone(&topology));
        assert!(Arc::ptr_eq(&topology, &scenario.topology()));
        let wrong = std::panic::catch_unwind(|| {
            let _ = wire.scenario_on(TopologyKind::Ring.topology(8));
        });
        assert!(wrong.is_err(), "a mismatched topology must be refused");
    }

    #[test]
    fn encoded_estimates_are_canonical_and_byte_stable() {
        let backend = ModelBackend::new();
        let fine = backend.evaluate(&Scenario::star(5).at(0.004));
        let encoded = encode_estimate(&fine);
        assert!(encoded.starts_with("{\"latency\":"));
        assert!(encoded.contains("\"saturated\":false"));
        assert!(encoded.contains("\"iterations\":"));
        assert_eq!(encoded, encode_estimate(&backend.evaluate(&Scenario::star(5).at(0.004))));
        // the float in the payload is the exact latency, shortest-form
        let value = serde_json::from_str(&encoded).unwrap();
        assert_eq!(value.get("latency").unwrap().as_f64(), fine.latency());
        // saturated points have a null latency, model points an iteration count
        let sat = backend.evaluate(&Scenario::star(5).at(0.5));
        let encoded = encode_estimate(&sat);
        assert!(encoded.starts_with("{\"latency\":null,\"saturated\":true,"));
        let value = serde_json::from_str(&encoded).unwrap();
        assert!(value.get("latency").unwrap().is_null());
        assert!(value.get("iterations").unwrap().as_u64().is_some());
    }
}
