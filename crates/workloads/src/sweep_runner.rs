//! The sweep-driving layer every harness used to hand-roll: a [`SweepRunner`]
//! takes a backend-agnostic [`Evaluator`] and a list of [`SweepSpec`]s and
//! shards the work across the persistent workers of the shared
//! [`star_exec::ExecPool`] (no threads are spawned per run).
//!
//! Two properties the harness binaries and tests rely on:
//!
//! * **Deterministic output order.**  Results come back grouped by sweep, in
//!   input order, with one estimate per rate in rate order — byte-identical
//!   for any thread count, because each work unit is computed independently
//!   of scheduling and reassembled by index (the pool's
//!   [`star_exec::ExecPool::run_ordered`] contract; replicates are folded in
//!   replicate-index order, so the aggregation is scheduling-blind too).
//! * **Granularity-aware sharding.**  A backend that chains state between
//!   the rates of one sweep ([`Evaluator::chains_rates`], e.g. the model's
//!   warm-started fixed point) is sharded at sweep granularity.  Independent
//!   backends are sharded at **(point × replicate)** granularity — each of a
//!   simulated point's [`Evaluator::fixed_replicates`] independently seeded
//!   replicates is its own work item, so a single heavy operating point with
//!   `R = 8` still fills eight cores.  A backend whose replicate count is
//!   dynamic (adaptive CI targeting returns `None`) is sharded at point
//!   granularity.
//!
//! For splitting one run across *processes* (or machines) instead of
//! threads, see [`shard_sweeps`] and the `--shard K/N` flag of the harness
//! binaries.

use serde::{Deserialize, Serialize};
use star_exec::{ExecPool, ShardSpec};

use crate::evaluator::{Evaluator, PointEstimate};
use crate::scenario::Scenario;

/// One named sweep: a scenario evaluated across a list of traffic rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Identifier used in reports and CSV file names (e.g. `"fig1a-M32"`).
    pub id: String,
    /// The scenario being swept.
    pub scenario: Scenario,
    /// Traffic generation rates to evaluate, in order.
    pub rates: Vec<f64>,
}

impl SweepSpec {
    /// Builds a sweep spec.
    #[must_use]
    pub fn new(id: impl Into<String>, scenario: Scenario, rates: Vec<f64>) -> Self {
        Self { id: id.into(), scenario, rates }
    }
}

/// One evaluated sweep: the spec's identity plus one estimate per rate, in
/// rate order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The sweep's identifier.
    pub id: String,
    /// The scenario that was swept.
    pub scenario: Scenario,
    /// One estimate per rate of the spec, in the spec's order.
    pub estimates: Vec<PointEstimate>,
}

impl SweepReport {
    /// The traffic rates of the report, in order.
    #[must_use]
    pub fn rates(&self) -> Vec<f64> {
        self.estimates.iter().map(|e| e.point.traffic_rate).collect()
    }

    /// The latency curve as plottable values (infinite when saturated).
    #[must_use]
    pub fn latency_curve(&self) -> Vec<f64> {
        self.estimates.iter().map(PointEstimate::latency_or_infinity).collect()
    }
}

/// Runs sweeps through an [`Evaluator`], sharding independent work units
/// across scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using all available parallelism.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(0)
    }

    /// A runner with an explicit worker count; `0` means "use all available
    /// parallelism" (the `--threads` convention of the harness binaries).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The resolved worker count (`0` resolves to all available
    /// parallelism, the shared pool's size — computed without
    /// instantiating the pool, so querying a serial runner stays free).
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }

    /// Evaluates every sweep, returning one [`SweepReport`] per spec in input
    /// order, each with one estimate per rate in rate order — independent of
    /// the thread count.
    ///
    /// # Panics
    /// Panics up front if the evaluator does not support one of the
    /// scenarios, and propagates panics from evaluation itself.
    #[must_use]
    pub fn run(&self, evaluator: &dyn Evaluator, sweeps: &[SweepSpec]) -> Vec<SweepReport> {
        for spec in sweeps {
            assert!(
                evaluator.supports(&spec.scenario),
                "the {} backend does not support scenario {} (sweep {:?})",
                evaluator.name(),
                spec.scenario.label(),
                spec.id
            );
        }

        // A unit is either a rate sub-range of one sweep or a single
        // replicate of a single point.  Backends that chain state between
        // rates get whole sweeps; independent backends get one unit per
        // (point × replicate) when the replicate count is known up front,
        // and one unit per point otherwise (adaptive replication).
        enum Unit {
            /// `evaluate_sweep` over `rates[from..to]` of sweep `sweep`.
            Span { sweep: usize, from: usize, to: usize },
            /// Replicate `replicate` (of `total`) of rate `rate` of `sweep`.
            Replicate { sweep: usize, rate: usize, replicate: usize, total: usize },
        }
        let mut units: Vec<Unit> = Vec::new();
        for (si, spec) in sweeps.iter().enumerate() {
            if evaluator.chains_rates() {
                units.push(Unit::Span { sweep: si, from: 0, to: spec.rates.len() });
                continue;
            }
            for ri in 0..spec.rates.len() {
                match evaluator.fixed_replicates(&spec.scenario) {
                    Some(total) if total > 1 => {
                        units.extend((0..total).map(|replicate| Unit::Replicate {
                            sweep: si,
                            rate: ri,
                            replicate,
                            total,
                        }));
                    }
                    _ => units.push(Unit::Span { sweep: si, from: ri, to: ri + 1 }),
                }
            }
        }

        // the persistent pool computes every unit independently and returns
        // the results in unit order, byte-identical for any width (width 1
        // stays inline and never instantiates the pool)
        let by_unit: Vec<Vec<PointEstimate>> =
            ExecPool::global_ordered(self.threads, &units, |_, work| match *work {
                Unit::Span { sweep, from, to } => {
                    let spec = &sweeps[sweep];
                    evaluator.evaluate_sweep(&spec.scenario, &spec.rates[from..to])
                }
                Unit::Replicate { sweep, rate, replicate, .. } => {
                    let spec = &sweeps[sweep];
                    let point = spec.scenario.at(spec.rates[rate]);
                    vec![evaluator.evaluate_replicate(&point, replicate)]
                }
            });

        let mut reports: Vec<SweepReport> = sweeps
            .iter()
            .map(|s| SweepReport {
                id: s.id.clone(),
                scenario: s.scenario.clone(),
                estimates: Vec::with_capacity(s.rates.len()),
            })
            .collect();
        // units are ordered by (sweep, rate, replicate); replicates of
        // one point are contiguous, so folding each completed replicate
        // group in unit order restores rate order within each sweep and
        // makes the aggregation independent of which worker ran what
        let mut pending: Vec<PointEstimate> = Vec::new();
        for (work, mut estimates) in units.iter().zip(by_unit) {
            match *work {
                Unit::Span { sweep, .. } => reports[sweep].estimates.extend(estimates),
                Unit::Replicate { sweep, replicate, total, .. } => {
                    debug_assert_eq!(pending.len(), replicate);
                    pending.append(&mut estimates);
                    if pending.len() == total {
                        reports[sweep]
                            .estimates
                            .push(evaluator.aggregate(std::mem::take(&mut pending)));
                    }
                }
            }
        }
        debug_assert!(pending.is_empty(), "every replicate group must be folded");
        reports
    }

    /// Convenience wrapper for one sweep.
    ///
    /// # Panics
    /// As [`Self::run`].
    #[must_use]
    pub fn run_one(&self, evaluator: &dyn Evaluator, sweep: &SweepSpec) -> SweepReport {
        self.run(evaluator, std::slice::from_ref(sweep)).pop().expect("one spec in, one report out")
    }

    /// One backend pass of a possibly cross-process-sharded run: evaluates
    /// the shard's slice of `full` and returns reports aligned with the
    /// full sweep list (one report per sweep, estimates restricted to the
    /// shard's points).  `None` is a plain [`Self::run`].
    ///
    /// Granularity mirrors the in-process sharding rules, for the same
    /// reason — determinism:
    ///
    /// * an **independent** backend (the simulator; any
    ///   non-[`Evaluator::chains_rates`] evaluator) computes every point in
    ///   isolation, so the shard evaluates only the points it owns
    ///   ([`shard_sweeps`]) and skips the rest entirely — this is where
    ///   cross-process sharding actually divides the expensive work;
    /// * a **chaining** backend (the warm-started model) would compute
    ///   different warm-start chains if its rate grid were sliced, so the
    ///   shard recomputes the *full* pass — microseconds per point, the
    ///   model's whole selling point — and then keeps only its slice of the
    ///   rows.  Every shard therefore emits values from the identical full
    ///   chain, which is what makes merged output byte-identical to an
    ///   unsharded run.
    ///
    /// # Panics
    /// As [`Self::run`].
    #[must_use]
    pub fn run_pass(
        &self,
        evaluator: &dyn Evaluator,
        shard: Option<ShardSpec>,
        full: &[SweepSpec],
    ) -> Vec<SweepReport> {
        match shard {
            None => self.run(evaluator, full),
            Some(shard) if evaluator.chains_rates() => {
                let mut reports = self.run(evaluator, full);
                retain_shard(shard, &mut reports);
                reports
            }
            Some(shard) => self.run(evaluator, &shard_sweeps(shard, full)),
        }
    }
}

/// Drops every estimate a shard does not own from a pass computed over the
/// full sweep list (flat point indices, as in [`shard_sweeps`]).  Used for
/// chaining backends, which sharded runs recompute in full — see
/// [`SweepRunner::run_pass`].
pub fn retain_shard(shard: ShardSpec, reports: &mut [SweepReport]) {
    let mut flat = 0usize;
    for report in reports {
        report.estimates.retain(|_| {
            let keep = shard.owns(flat);
            flat += 1;
            keep
        });
    }
}

/// The index of each of a (possibly sharded) report's estimates in the full
/// rate grid it was sliced from — the row indices sharded CSV emission
/// needs.  Estimates must be an ordered subset of `full_rates`.
///
/// # Panics
/// Panics if an estimate's rate is not found in (the remainder of)
/// `full_rates`.
#[must_use]
pub fn rate_indices(full_rates: &[f64], report: &SweepReport) -> Vec<usize> {
    let mut cursor = 0usize;
    report
        .estimates
        .iter()
        .map(|estimate| {
            let index = full_rates[cursor..]
                .iter()
                .position(|&r| r == estimate.point.traffic_rate)
                .map(|p| cursor + p)
                .unwrap_or_else(|| {
                    panic!(
                        "estimate rate {} of sweep {:?} is not in the full rate grid",
                        estimate.point.traffic_rate, report.id
                    )
                });
            cursor = index + 1;
            index
        })
        .collect()
}

/// Restricts a run's sweeps to one cross-process shard: the flat sequence
/// of operating points (every rate of every sweep, in order) is sliced by
/// [`ShardSpec::owns`], so `N` processes running shards `1/N .. N/N` of the
/// same sweep list cover every point exactly once.
///
/// Sweeps keep their identity (id, scenario) even when a shard owns none of
/// their points — the reports stay aligned with the full sweep list, which
/// is what lets [`crate::report::ReportSink`] compute each row's index in
/// the unsharded CSV.
#[must_use]
pub fn shard_sweeps(shard: ShardSpec, sweeps: &[SweepSpec]) -> Vec<SweepSpec> {
    let mut flat = 0usize;
    sweeps
        .iter()
        .map(|spec| {
            let rates = spec
                .rates
                .iter()
                .copied()
                .filter(|_| {
                    let keep = shard.owns(flat);
                    flat += 1;
                    keep
                })
                .collect();
            SweepSpec { id: spec.id.clone(), scenario: spec.scenario.clone(), rates }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ModelBackend, SimBackend};
    use crate::scenario::Discipline;
    use crate::SimBudget;

    fn model_sweeps() -> Vec<SweepSpec> {
        [6usize, 9]
            .iter()
            .map(|&v| {
                SweepSpec::new(
                    format!("v{v}"),
                    Scenario::star(4).with_message_length(16).with_virtual_channels(v),
                    vec![0.002, 0.006, 0.010],
                )
            })
            .collect()
    }

    #[test]
    fn reports_come_back_in_input_order_with_rates_in_order() {
        let runner = SweepRunner::with_threads(3);
        let reports = runner.run(&ModelBackend::new(), &model_sweeps());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].id, "v6");
        assert_eq!(reports[1].id, "v9");
        for report in &reports {
            assert_eq!(report.rates(), vec![0.002, 0.006, 0.010]);
            assert_eq!(report.estimates.len(), report.latency_curve().len());
        }
    }

    #[test]
    fn thread_count_does_not_change_model_results() {
        let sweeps = model_sweeps();
        let one = SweepRunner::with_threads(1).run(&ModelBackend::new(), &sweeps);
        let many = SweepRunner::with_threads(4).run(&ModelBackend::new(), &sweeps);
        assert_eq!(one, many);
        assert_eq!(format!("{one:?}"), format!("{many:?}"));
    }

    #[test]
    fn thread_count_does_not_change_sim_results() {
        let sweep = SweepSpec::new(
            "s4",
            Scenario::star(4).with_message_length(16).with_seed_base(5),
            vec![0.003, 0.005],
        );
        let backend = SimBackend::new(SimBudget::Quick);
        let one = SweepRunner::with_threads(1).run_one(&backend, &sweep);
        let two = SweepRunner::with_threads(2).run_one(&backend, &sweep);
        assert_eq!(one, two);
    }

    #[test]
    fn replicates_shard_and_reaggregate_identically_for_any_thread_count() {
        // 2 points × 3 replicates = 6 independent work items; every thread
        // count must fold them back into the same two estimates the
        // sequential backend produces
        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(3).with_seed_base(17);
        let sweep = SweepSpec::new("s4r3", scenario.clone(), vec![0.003, 0.005]);
        let backend = SimBackend::new(SimBudget::Quick);
        let direct: Vec<_> =
            sweep.rates.iter().map(|&r| backend.evaluate(&scenario.at(r))).collect();
        for threads in [1usize, 2, 5] {
            let report = SweepRunner::with_threads(threads).run_one(&backend, &sweep);
            assert_eq!(report.estimates, direct, "threads = {threads}");
            assert!(report.estimates.iter().all(|e| e.replicates() == 3));
            assert!(report.estimates.iter().all(|e| e.latency_ci95() > 0.0));
        }
    }

    #[test]
    fn adaptive_replication_shards_at_point_granularity() {
        use crate::evaluator::CiTarget;
        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(23);
        let sweep = SweepSpec::new("adaptive", scenario, vec![0.003, 0.005]);
        let backend = SimBackend::new(SimBudget::Quick)
            .with_ci_target(CiTarget { relative: 0.5, max_replicates: 4 });
        let one = SweepRunner::with_threads(1).run_one(&backend, &sweep);
        let four = SweepRunner::with_threads(4).run_one(&backend, &sweep);
        assert_eq!(one, four);
        assert!(one.estimates.iter().all(|e| e.replicates() >= 2));
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(SweepRunner::new().threads() >= 1);
        assert_eq!(SweepRunner::with_threads(3).threads(), 3);
    }

    #[test]
    fn shard_sweeps_partition_the_flat_point_list() {
        let sweeps = model_sweeps(); // 2 sweeps × 3 rates = flat points 0..6
        let shards: Vec<Vec<SweepSpec>> = (1..=3)
            .map(|k| shard_sweeps(ShardSpec::parse(&format!("{k}/3")).unwrap(), &sweeps))
            .collect();
        // every shard keeps the sweep identities, even for unowned sweeps
        for sharded in &shards {
            assert_eq!(sharded.len(), 2);
            assert_eq!(sharded[0].id, "v6");
            assert_eq!(sharded[1].id, "v9");
        }
        // round-robin over flat indices: shard 1 owns 0 and 3, and so on
        assert_eq!(shards[0][0].rates, vec![0.002]);
        assert_eq!(shards[0][1].rates, vec![0.002]);
        assert_eq!(shards[1][0].rates, vec![0.006]);
        assert_eq!(shards[2][1].rates, vec![0.010]);
        // the union of the shards is the full point list, disjointly
        let total: usize = shards.iter().flat_map(|s| s.iter().map(|spec| spec.rates.len())).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn sharded_passes_reassemble_the_unsharded_reports() {
        // independent backend: each shard evaluates only its own points;
        // chaining backend: each shard recomputes the full warm chain and
        // keeps its slice — either way, stitching the three shards'
        // estimates back together by rate must reproduce the unsharded pass
        let runner = SweepRunner::with_threads(2);
        let sim_sweep = SweepSpec::new(
            "s4",
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(5),
            vec![0.002, 0.003, 0.004, 0.005],
        );
        let backends: [(&dyn Evaluator, Vec<SweepSpec>); 2] = [
            (&SimBackend::new(crate::SimBudget::Quick), vec![sim_sweep]),
            (&ModelBackend::new(), model_sweeps()),
        ];
        for (evaluator, full) in backends {
            let unsharded = runner.run_pass(evaluator, None, &full);
            let mut stitched: Vec<Vec<Option<PointEstimate>>> =
                full.iter().map(|s| vec![None; s.rates.len()]).collect();
            for k in 1..=3 {
                let shard = ShardSpec::parse(&format!("{k}/3")).unwrap();
                let partial = runner.run_pass(evaluator, Some(shard), &full);
                for (si, report) in partial.iter().enumerate() {
                    let indices = rate_indices(&full[si].rates, report);
                    for (estimate, ri) in report.estimates.iter().zip(indices) {
                        assert!(stitched[si][ri].is_none(), "point owned twice");
                        stitched[si][ri] = Some(estimate.clone());
                    }
                }
            }
            for (report, slots) in unsharded.iter().zip(stitched) {
                let merged: Vec<PointEstimate> =
                    slots.into_iter().map(|s| s.expect("point never owned")).collect();
                assert_eq!(report.estimates, merged, "{} backend", evaluator.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in the full rate grid")]
    fn rate_indices_reject_foreign_rates() {
        let report = SweepRunner::with_threads(1).run_one(
            &ModelBackend::new(),
            &SweepSpec::new("v6", Scenario::star(4).with_message_length(16), vec![0.002, 0.006]),
        );
        let _ = rate_indices(&[0.002, 0.007], &report);
    }

    #[test]
    #[should_panic(expected = "does not support scenario")]
    fn unsupported_scenario_is_rejected_up_front() {
        let spec = SweepSpec::new(
            "det",
            Scenario::star(4).with_discipline(Discipline::Deterministic),
            vec![0.001],
        );
        let _ = SweepRunner::with_threads(1).run(&ModelBackend::new(), &[spec]);
    }
}
