//! The sweep-driving layer every harness used to hand-roll: a [`SweepRunner`]
//! takes a backend-agnostic [`Evaluator`] and a list of [`SweepSpec`]s and
//! shards the work across `std::thread::scope` workers.
//!
//! Two properties the harness binaries and tests rely on:
//!
//! * **Deterministic output order.**  Results come back grouped by sweep, in
//!   input order, with one estimate per rate in rate order — byte-identical
//!   for any thread count, because each work unit is computed independently
//!   of scheduling and reassembled by index (replicates are folded in
//!   replicate-index order, so the aggregation is scheduling-blind too).
//! * **Granularity-aware sharding.**  A backend that chains state between
//!   the rates of one sweep ([`Evaluator::chains_rates`], e.g. the model's
//!   warm-started fixed point) is sharded at sweep granularity.  Independent
//!   backends are sharded at **(point × replicate)** granularity — each of a
//!   simulated point's [`Evaluator::fixed_replicates`] independently seeded
//!   replicates is its own work item, so a single heavy operating point with
//!   `R = 8` still fills eight cores.  A backend whose replicate count is
//!   dynamic (adaptive CI targeting returns `None`) is sharded at point
//!   granularity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use serde::{Deserialize, Serialize};

use crate::evaluator::{Evaluator, PointEstimate};
use crate::scenario::Scenario;

/// One named sweep: a scenario evaluated across a list of traffic rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Identifier used in reports and CSV file names (e.g. `"fig1a-M32"`).
    pub id: String,
    /// The scenario being swept.
    pub scenario: Scenario,
    /// Traffic generation rates to evaluate, in order.
    pub rates: Vec<f64>,
}

impl SweepSpec {
    /// Builds a sweep spec.
    #[must_use]
    pub fn new(id: impl Into<String>, scenario: Scenario, rates: Vec<f64>) -> Self {
        Self { id: id.into(), scenario, rates }
    }
}

/// One evaluated sweep: the spec's identity plus one estimate per rate, in
/// rate order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The sweep's identifier.
    pub id: String,
    /// The scenario that was swept.
    pub scenario: Scenario,
    /// One estimate per rate of the spec, in the spec's order.
    pub estimates: Vec<PointEstimate>,
}

impl SweepReport {
    /// The traffic rates of the report, in order.
    #[must_use]
    pub fn rates(&self) -> Vec<f64> {
        self.estimates.iter().map(|e| e.point.traffic_rate).collect()
    }

    /// The latency curve as plottable values (infinite when saturated).
    #[must_use]
    pub fn latency_curve(&self) -> Vec<f64> {
        self.estimates.iter().map(PointEstimate::latency_or_infinity).collect()
    }
}

/// Runs sweeps through an [`Evaluator`], sharding independent work units
/// across scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using all available parallelism.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(0)
    }

    /// A runner with an explicit worker count; `0` means "use all available
    /// parallelism" (the `--threads` convention of the harness binaries).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The resolved worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }

    /// Evaluates every sweep, returning one [`SweepReport`] per spec in input
    /// order, each with one estimate per rate in rate order — independent of
    /// the thread count.
    ///
    /// # Panics
    /// Panics up front if the evaluator does not support one of the
    /// scenarios, and propagates panics from evaluation itself.
    #[must_use]
    pub fn run(&self, evaluator: &dyn Evaluator, sweeps: &[SweepSpec]) -> Vec<SweepReport> {
        for spec in sweeps {
            assert!(
                evaluator.supports(&spec.scenario),
                "the {} backend does not support scenario {} (sweep {:?})",
                evaluator.name(),
                spec.scenario.label(),
                spec.id
            );
        }

        // A unit is either a rate sub-range of one sweep or a single
        // replicate of a single point.  Backends that chain state between
        // rates get whole sweeps; independent backends get one unit per
        // (point × replicate) when the replicate count is known up front,
        // and one unit per point otherwise (adaptive replication).
        enum Unit {
            /// `evaluate_sweep` over `rates[from..to]` of sweep `sweep`.
            Span { sweep: usize, from: usize, to: usize },
            /// Replicate `replicate` (of `total`) of rate `rate` of `sweep`.
            Replicate { sweep: usize, rate: usize, replicate: usize, total: usize },
        }
        let mut units: Vec<Unit> = Vec::new();
        for (si, spec) in sweeps.iter().enumerate() {
            if evaluator.chains_rates() {
                units.push(Unit::Span { sweep: si, from: 0, to: spec.rates.len() });
                continue;
            }
            for ri in 0..spec.rates.len() {
                match evaluator.fixed_replicates(&spec.scenario) {
                    Some(total) if total > 1 => {
                        units.extend((0..total).map(|replicate| Unit::Replicate {
                            sweep: si,
                            rate: ri,
                            replicate,
                            total,
                        }));
                    }
                    _ => units.push(Unit::Span { sweep: si, from: ri, to: ri + 1 }),
                }
            }
        }

        let workers = self.threads().min(units.len()).max(1);
        let next_unit = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<PointEstimate>)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let units = &units;
                let next_unit = &next_unit;
                scope.spawn(move || loop {
                    let unit = next_unit.fetch_add(1, Ordering::Relaxed);
                    let Some(work) = units.get(unit) else { break };
                    let estimates = match *work {
                        Unit::Span { sweep, from, to } => {
                            let spec = &sweeps[sweep];
                            evaluator.evaluate_sweep(&spec.scenario, &spec.rates[from..to])
                        }
                        Unit::Replicate { sweep, rate, replicate, .. } => {
                            let spec = &sweeps[sweep];
                            let point = spec.scenario.at(spec.rates[rate]);
                            vec![evaluator.evaluate_replicate(&point, replicate)]
                        }
                    };
                    // a send can only fail if the receiver is gone, which
                    // means the parent already panicked
                    let _ = tx.send((unit, estimates));
                });
            }
            drop(tx);

            let mut by_unit: Vec<Option<Vec<PointEstimate>>> = vec![None; units.len()];
            for (unit, estimates) in rx {
                by_unit[unit] = Some(estimates);
            }
            let mut reports: Vec<SweepReport> = sweeps
                .iter()
                .map(|s| SweepReport {
                    id: s.id.clone(),
                    scenario: s.scenario,
                    estimates: Vec::with_capacity(s.rates.len()),
                })
                .collect();
            // units are ordered by (sweep, rate, replicate); replicates of
            // one point are contiguous, so folding each completed replicate
            // group in unit order restores rate order within each sweep and
            // makes the aggregation independent of which worker ran what
            let mut pending: Vec<PointEstimate> = Vec::new();
            for (work, estimates) in units.iter().zip(by_unit) {
                let mut estimates =
                    estimates.unwrap_or_else(|| panic!("worker died before finishing a unit"));
                match *work {
                    Unit::Span { sweep, .. } => reports[sweep].estimates.extend(estimates),
                    Unit::Replicate { sweep, replicate, total, .. } => {
                        debug_assert_eq!(pending.len(), replicate);
                        pending.append(&mut estimates);
                        if pending.len() == total {
                            reports[sweep]
                                .estimates
                                .push(evaluator.aggregate(std::mem::take(&mut pending)));
                        }
                    }
                }
            }
            debug_assert!(pending.is_empty(), "every replicate group must be folded");
            reports
        })
    }

    /// Convenience wrapper for one sweep.
    ///
    /// # Panics
    /// As [`Self::run`].
    #[must_use]
    pub fn run_one(&self, evaluator: &dyn Evaluator, sweep: &SweepSpec) -> SweepReport {
        self.run(evaluator, std::slice::from_ref(sweep)).pop().expect("one spec in, one report out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ModelBackend, SimBackend};
    use crate::scenario::Discipline;
    use crate::SimBudget;

    fn model_sweeps() -> Vec<SweepSpec> {
        [6usize, 9]
            .iter()
            .map(|&v| {
                SweepSpec::new(
                    format!("v{v}"),
                    Scenario::star(4).with_message_length(16).with_virtual_channels(v),
                    vec![0.002, 0.006, 0.010],
                )
            })
            .collect()
    }

    #[test]
    fn reports_come_back_in_input_order_with_rates_in_order() {
        let runner = SweepRunner::with_threads(3);
        let reports = runner.run(&ModelBackend::new(), &model_sweeps());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].id, "v6");
        assert_eq!(reports[1].id, "v9");
        for report in &reports {
            assert_eq!(report.rates(), vec![0.002, 0.006, 0.010]);
            assert_eq!(report.estimates.len(), report.latency_curve().len());
        }
    }

    #[test]
    fn thread_count_does_not_change_model_results() {
        let sweeps = model_sweeps();
        let one = SweepRunner::with_threads(1).run(&ModelBackend::new(), &sweeps);
        let many = SweepRunner::with_threads(4).run(&ModelBackend::new(), &sweeps);
        assert_eq!(one, many);
        assert_eq!(format!("{one:?}"), format!("{many:?}"));
    }

    #[test]
    fn thread_count_does_not_change_sim_results() {
        let sweep = SweepSpec::new(
            "s4",
            Scenario::star(4).with_message_length(16).with_seed_base(5),
            vec![0.003, 0.005],
        );
        let backend = SimBackend::new(SimBudget::Quick);
        let one = SweepRunner::with_threads(1).run_one(&backend, &sweep);
        let two = SweepRunner::with_threads(2).run_one(&backend, &sweep);
        assert_eq!(one, two);
    }

    #[test]
    fn replicates_shard_and_reaggregate_identically_for_any_thread_count() {
        // 2 points × 3 replicates = 6 independent work items; every thread
        // count must fold them back into the same two estimates the
        // sequential backend produces
        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(3).with_seed_base(17);
        let sweep = SweepSpec::new("s4r3", scenario, vec![0.003, 0.005]);
        let backend = SimBackend::new(SimBudget::Quick);
        let direct: Vec<_> =
            sweep.rates.iter().map(|&r| backend.evaluate(&scenario.at(r))).collect();
        for threads in [1usize, 2, 5] {
            let report = SweepRunner::with_threads(threads).run_one(&backend, &sweep);
            assert_eq!(report.estimates, direct, "threads = {threads}");
            assert!(report.estimates.iter().all(|e| e.replicates() == 3));
            assert!(report.estimates.iter().all(|e| e.latency_ci95() > 0.0));
        }
    }

    #[test]
    fn adaptive_replication_shards_at_point_granularity() {
        use crate::evaluator::CiTarget;
        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(23);
        let sweep = SweepSpec::new("adaptive", scenario, vec![0.003, 0.005]);
        let backend = SimBackend::new(SimBudget::Quick)
            .with_ci_target(CiTarget { relative: 0.5, max_replicates: 4 });
        let one = SweepRunner::with_threads(1).run_one(&backend, &sweep);
        let four = SweepRunner::with_threads(4).run_one(&backend, &sweep);
        assert_eq!(one, four);
        assert!(one.estimates.iter().all(|e| e.replicates() >= 2));
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(SweepRunner::new().threads() >= 1);
        assert_eq!(SweepRunner::with_threads(3).threads(), 3);
    }

    #[test]
    #[should_panic(expected = "does not support scenario")]
    fn unsupported_scenario_is_rejected_up_front() {
        let spec = SweepSpec::new(
            "det",
            Scenario::star(4).with_discipline(Discipline::Deterministic),
            vec![0.001],
        );
        let _ = SweepRunner::with_threads(1).run(&ModelBackend::new(), &[spec]);
    }
}
