//! Workspace automation, invoked as `cargo xtask <command>` through the
//! `[alias]` in `.cargo/config.toml`.
//!
//! * `cargo xtask ci` — the full verification pipeline, in the same order the
//!   GitHub Actions workflow runs it: rustfmt check, clippy with warnings
//!   denied, release build, tests, doctests, a smoke run of every criterion
//!   bench in `--test` mode (each bench body executes once), a replicate
//!   smoke (one `star_vs_hypercube` point simulated with `--replicates 3`,
//!   so the multi-seed fan-out path runs on every push), and
//!   `cargo doc --no-deps` with `RUSTDOCFLAGS="-D warnings"` so broken
//!   intra-doc links fail the pipeline.
//! * `cargo xtask figure1` — regenerates the paper's Figure 1 CSVs under
//!   `target/experiments/` via the `figure1` harness binary (quick budget and
//!   all available cores by default; extra arguments are forwarded, e.g.
//!   `cargo xtask figure1 -- --budget thorough --replicates 5 --threads 4`).

use std::env;
use std::process::{Command, ExitCode};
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("help", &[][..]),
    };
    match command {
        "ci" => ci(),
        "figure1" => figure1(rest),
        "help" | "--help" | "-h" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown xtask command: {other}\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!("usage: cargo xtask <command>\n");
    eprintln!("commands:");
    eprintln!(
        "  ci        fmt-check, clippy -D warnings, build, test, doctest, bench smoke, \
         replicate smoke, doc -D warnings"
    );
    eprintln!(
        "  figure1   regenerate the paper's Figure 1 CSVs (forwards extra args, \
         e.g. --budget thorough --replicates 5 --threads 4)"
    );
}

/// The cargo binary driving this xtask (set by cargo itself).
fn cargo() -> String {
    env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

/// Runs one pipeline step, echoing it and failing fast on error.
fn step(name: &str, args: &[&str]) -> Result<(), String> {
    step_env(name, args, &[])
}

/// [`step`] with extra environment variables (e.g. `RUSTDOCFLAGS` for the
/// doc step).
fn step_env(name: &str, args: &[&str], envs: &[(&str, &str)]) -> Result<(), String> {
    println!("\n==> {name}: cargo {}", args.join(" "));
    let started = Instant::now();
    let status = Command::new(cargo())
        .args(args)
        .envs(envs.iter().copied())
        .status()
        .map_err(|e| format!("{name}: failed to spawn cargo: {e}"))?;
    if status.success() {
        println!("==> {name}: ok ({:.1}s)", started.elapsed().as_secs_f64());
        Ok(())
    } else {
        Err(format!("{name}: cargo {} exited with {status}", args.join(" ")))
    }
}

fn ci() -> ExitCode {
    let pipeline: &[(&str, &[&str])] = &[
        ("fmt", &["fmt", "--all", "--check"]),
        ("clippy", &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"]),
        ("build", &["build", "--release", "--workspace"]),
        // --all-targets excludes doctests, which run in their own step below
        ("test", &["test", "-q", "--workspace", "--all-targets"]),
        ("doctest", &["test", "-q", "--workspace", "--doc"]),
        // scoped to the criterion benches; the workspace-wide smoke (which
        // also drags every lib test harness through bench mode) is a separate
        // CI job
        ("bench-smoke", &["bench", "-p", "star-bench", "--", "--test"]),
        // one multi-replicate simulated point (S4/Q5, R = 3, quick budget)
        // so the (point × replicate) fan-out, aggregation and CI columns are
        // exercised end-to-end on every push
        (
            "replicate-smoke",
            &[
                "run",
                "--release",
                "-p",
                "star-bench",
                "--bin",
                "star_vs_hypercube",
                "--",
                "--n",
                "4",
                "--points",
                "1",
                "--replicates",
                "3",
                "--budget",
                "quick",
            ],
        ),
    ];
    let started = Instant::now();
    for (name, args) in pipeline {
        if let Err(e) = step(name, args) {
            eprintln!("\nci FAILED at {e}");
            return ExitCode::FAILURE;
        }
    }
    // rustdoc warnings (broken intra-doc links, missing docs) fail the
    // pipeline: REPRODUCING.md and the crate docs are part of the contract
    if let Err(e) =
        step_env("doc", &["doc", "--no-deps", "--workspace"], &[("RUSTDOCFLAGS", "-D warnings")])
    {
        eprintln!("\nci FAILED at {e}");
        return ExitCode::FAILURE;
    }
    println!("\nci passed in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

fn figure1(rest: &[String]) -> ExitCode {
    let mut args: Vec<&str> =
        vec!["run", "--release", "-p", "star-bench", "--bin", "figure1", "--"];
    let forwarded: Vec<&str> = rest.iter().map(String::as_str).filter(|a| *a != "--").collect();
    let has_budget = forwarded.iter().any(|a| *a == "--budget" || a.starts_with("--budget="));
    let has_threads = forwarded.iter().any(|a| *a == "--threads" || a.starts_with("--threads="));
    args.extend(forwarded);
    if !has_budget {
        args.extend(["--budget", "quick"]);
    }
    if !has_threads {
        // 0 = all available parallelism (the SweepRunner convention)
        args.extend(["--threads", "0"]);
    }
    match step("figure1", &args) {
        Ok(()) => {
            println!("\nFigure 1 CSVs are under target/experiments/");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("\nfigure1 FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
