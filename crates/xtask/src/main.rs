//! Workspace automation, invoked as `cargo xtask <command>` through the
//! `[alias]` in `.cargo/config.toml`.
//!
//! * `cargo xtask ci` — the full verification pipeline, in the same order the
//!   GitHub Actions workflow runs it: rustfmt check, clippy with warnings
//!   denied, release build, tests, doctests, a smoke run of every criterion
//!   bench in `--test` mode (each bench body executes once), a replicate
//!   smoke (one `star_vs_hypercube` point simulated with `--replicates 3`,
//!   so the multi-seed fan-out path runs on every push), a **torus smoke**
//!   (one simulated `T6` point checked against the generic traversal-spectrum
//!   model with `--check-band 25`, so the topology-plugin path — BFS census,
//!   spectrum model and simulator on a non-closed-form topology — is
//!   cross-validated on every push), a **shard smoke** (the same small sweep
//!   run unsharded and as `--shard 1/2` + `--shard 2/2`, merged with the
//!   library behind `merge-shards`, and byte-compared — the cross-process
//!   sharding contract, enforced on every push), a **serve smoke** (two
//!   `star-serve` launches on ephemeral ports: first a cold daemon whose
//!   deterministic query mix is replayed twice over TCP, every answer
//!   byte-compared to a batch [`star_workloads::ModelBackend`] solve of
//!   the same operating point with the second pass served from the solve
//!   cache; then a **prewarmed** daemon (`--prewarm pool`, 4 shards) whose
//!   very first queries must hit `exact` with the same byte-identity, and
//!   which must survive a `star-load --connections 4` replay with zero
//!   errors — the serving contract plus the scale-out path, enforced on
//!   every push), a **sim-equiv smoke** (`sim-bench --equiv`:
//!   the ticking and event-driven simulator engines byte-compared on every
//!   topology family with non-zero stage-skip counters asserted at light
//!   load, a parallel replicate fan-out (`R = 3`, width 2) byte-compared
//!   against the serial fold, plus one `S6` light-load point on the
//!   event-driven default cross-checked against the analytical model — the
//!   engine-equivalence contract, enforced on every push), and
//!   `cargo doc --no-deps` with `RUSTDOCFLAGS="-D warnings"` so broken
//!   intra-doc links fail the pipeline.
//! * `cargo xtask figure1` — regenerates the paper's Figure 1 CSVs under
//!   `target/experiments/` via the `figure1` harness binary (quick budget and
//!   all available cores by default; extra arguments are forwarded, e.g.
//!   `cargo xtask figure1 -- --budget thorough --replicates 5 --threads 4`,
//!   including `--shard K/N` for sharded regeneration and
//!   `--topology hypercube|torus|ring` to replay the grid on another
//!   family).
//! * `cargo xtask merge-shards --out <merged.csv> <partial.csv>...` — merges
//!   the partial CSVs written by `--shard K/N` harness runs into one CSV
//!   byte-identical to an unsharded run (validating that the shard set is
//!   complete and consistent).
//! * `cargo xtask serve-bench` — launches `star-serve` on an ephemeral port
//!   (8 shards, the `pool` prewarm list) and replays the pinned `star-load`
//!   stream against it (2000 queries, seed 7, half warm-mode, pipeline 8,
//!   4 connections), appending the measurement to `BENCH_serve.json` at the
//!   repository root; extra arguments are forwarded to `star-load` and
//!   override the pinned knobs.
//! * `cargo xtask sim-bench` — runs the pinned `sim-bench` flit-throughput
//!   scenario (S5, Enhanced-NBC, 20 000 measured messages, seed 42) at the
//!   light/moderate/heavy utilisation points on both simulator engines and
//!   appends one measurement per point — flits/sec per engine, the speedup
//!   and the stage-skip counters — to `BENCH_sim.json` at the repository
//!   root; extra arguments are forwarded to `sim-bench` and override the
//!   pinned knobs.

use std::env;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("help", &[][..]),
    };
    match command {
        "ci" => ci(),
        "figure1" => figure1(rest),
        "merge-shards" => merge_shards(rest),
        "serve-bench" => serve_bench(rest),
        "sim-bench" => sim_bench(rest),
        "sim-equiv-smoke" => match step("sim-equiv-smoke", SIM_EQUIV_SMOKE) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("\nsim-equiv-smoke FAILED at {e}");
                ExitCode::FAILURE
            }
        },
        "serve-smoke" => match serve_smoke() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("\nserve-smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        },
        "help" | "--help" | "-h" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown xtask command: {other}\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!("usage: cargo xtask <command>\n");
    eprintln!("commands:");
    eprintln!(
        "  ci            fmt-check, clippy -D warnings, build, test, doctest, bench smoke, \
         replicate smoke, torus smoke, sim-equiv smoke, shard smoke, serve smoke, \
         doc -D warnings"
    );
    eprintln!(
        "  figure1       regenerate the paper's Figure 1 CSVs (forwards extra args, \
         e.g. --budget thorough --replicates 5 --threads 4 --shard 1/2 --topology torus)"
    );
    eprintln!(
        "  merge-shards  --out <merged.csv> <partial.csv>... \
         merge --shard K/N partial CSVs into the unsharded bytes"
    );
    eprintln!(
        "  serve-bench   launch star-serve, replay the pinned star-load stream and \
         append the measurement to BENCH_serve.json (forwards extra args to star-load)"
    );
    eprintln!(
        "  serve-smoke   just the ci serving-contract check, cold and prewarmed (needs release \
         builds: cargo build --release -p star-serve -p star-bench)"
    );
    eprintln!(
        "  sim-bench     run the pinned sim-bench scenario at the light/moderate/heavy \
         utilisation points on both simulator engines and append flits/sec plus \
         stage-skip counters per point to BENCH_sim.json (forwards extra args to sim-bench)"
    );
    eprintln!("  sim-equiv-smoke  just the ci engine-equivalence check (sim-bench --equiv)");
}

/// The ci engine-equivalence step: `sim-bench --equiv` byte-compares the
/// ticking and event-driven engines on every topology family and
/// cross-checks one `S6` point on the event-driven default against the
/// analytical model.
const SIM_EQUIV_SMOKE: &[&str] =
    &["run", "--release", "-p", "star-bench", "--bin", "sim-bench", "--", "--equiv"];

/// The cargo binary driving this xtask (set by cargo itself).
fn cargo() -> String {
    env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

/// Runs one pipeline step, echoing it and failing fast on error.
fn step(name: &str, args: &[&str]) -> Result<(), String> {
    step_env(name, args, &[])
}

/// [`step`] with extra environment variables (e.g. `RUSTDOCFLAGS` for the
/// doc step).
fn step_env(name: &str, args: &[&str], envs: &[(&str, &str)]) -> Result<(), String> {
    println!("\n==> {name}: cargo {}", args.join(" "));
    let started = Instant::now();
    let status = Command::new(cargo())
        .args(args)
        .envs(envs.iter().copied())
        .status()
        .map_err(|e| format!("{name}: failed to spawn cargo: {e}"))?;
    if status.success() {
        println!("==> {name}: ok ({:.1}s)", started.elapsed().as_secs_f64());
        Ok(())
    } else {
        Err(format!("{name}: cargo {} exited with {status}", args.join(" ")))
    }
}

fn ci() -> ExitCode {
    let pipeline: &[(&str, &[&str])] = &[
        ("fmt", &["fmt", "--all", "--check"]),
        ("clippy", &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"]),
        ("build", &["build", "--release", "--workspace"]),
        // --all-targets excludes doctests, which run in their own step below
        ("test", &["test", "-q", "--workspace", "--all-targets"]),
        ("doctest", &["test", "-q", "--workspace", "--doc"]),
        // scoped to the criterion benches; the workspace-wide smoke (which
        // also drags every lib test harness through bench mode) is a separate
        // CI job
        ("bench-smoke", &["bench", "-p", "star-bench", "--", "--test"]),
        // one multi-replicate simulated point (S4/Q5, R = 3, quick budget)
        // so the (point × replicate) fan-out, aggregation and CI columns are
        // exercised end-to-end on every push
        (
            "replicate-smoke",
            &[
                "run",
                "--release",
                "-p",
                "star-bench",
                "--bin",
                "star_vs_hypercube",
                "--",
                "--topology",
                "star,hypercube",
                "--n",
                "4",
                "--points",
                "1",
                "--replicates",
                "3",
                "--budget",
                "quick",
            ],
        ),
        // a short simulated torus sweep cross-validated against the generic
        // traversal-spectrum model: the topology-plugin path (no closed
        // form anywhere) must agree with the simulator within the moderate
        // tolerance band on every push (the gate covers the grid's points
        // up to moderate utilisation; the top point sits beyond it)
        (
            "torus-smoke",
            &[
                "run",
                "--release",
                "-p",
                "star-bench",
                "--bin",
                "star_vs_hypercube",
                "--",
                "--topology",
                "torus",
                "--torus-k",
                "6",
                "--points",
                "3",
                "--replicates",
                "3",
                "--budget",
                "quick",
                "--check-band",
                "25",
            ],
        ),
        // the simulator engine-equivalence contract: ticking vs event-driven
        // byte-compared on every topology family, plus one S6 light-load
        // point on the event-driven default held to the model's 10% band
        ("sim-equiv-smoke", SIM_EQUIV_SMOKE),
    ];
    let started = Instant::now();
    for (name, args) in pipeline {
        if let Err(e) = step(name, args) {
            eprintln!("\nci FAILED at {e}");
            return ExitCode::FAILURE;
        }
    }
    // the cross-process sharding contract, end to end: a small sweep run
    // unsharded and as two shards must merge to byte-identical CSV
    if let Err(e) = shard_smoke() {
        eprintln!("\nci FAILED at shard-smoke: {e}");
        return ExitCode::FAILURE;
    }
    // the serving contract, end to end: the daemon must answer the wire
    // protocol byte-identically to a batch ModelBackend solve, serve the
    // second pass from its cache, and drain on the `shutdown` op
    if let Err(e) = serve_smoke() {
        eprintln!("\nci FAILED at serve-smoke: {e}");
        return ExitCode::FAILURE;
    }
    // rustdoc warnings (broken intra-doc links, missing docs) fail the
    // pipeline: REPRODUCING.md and the crate docs are part of the contract
    if let Err(e) =
        step_env("doc", &["doc", "--no-deps", "--workspace"], &[("RUSTDOCFLAGS", "-D warnings")])
    {
        eprintln!("\nci FAILED at {e}");
        return ExitCode::FAILURE;
    }
    println!("\nci passed in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// Runs one small `star_vs_hypercube` sweep unsharded and as 2 shards, then
/// checks that the merged partials reproduce the unsharded CSV byte for
/// byte.
fn shard_smoke() -> Result<(), String> {
    let base: &[&str] = &[
        "run",
        "--release",
        "-p",
        "star-bench",
        "--bin",
        "star_vs_hypercube",
        "--",
        "--topology",
        "star,hypercube",
        "--n",
        "4",
        "--points",
        "2",
        "--replicates",
        "2",
        "--budget",
        "quick",
    ];
    let with_shard = |shard: &'static str| -> Vec<&'static str> {
        let mut args = base.to_vec();
        if !shard.is_empty() {
            args.extend(["--shard", shard]);
        }
        args
    };
    step("shard-smoke (unsharded)", &with_shard(""))?;
    let dir = Path::new("target/experiments");
    let reference = fs::read_to_string(dir.join("star_vs_hypercube.csv"))
        .map_err(|e| format!("reading unsharded reference: {e}"))?;
    step("shard-smoke (shard 1/2)", &with_shard("1/2"))?;
    step("shard-smoke (shard 2/2)", &with_shard("2/2"))?;
    let partials: Vec<String> = ["1of2", "2of2"]
        .iter()
        .map(|label| {
            let path = dir.join(format!("star_vs_hypercube.shard{label}.csv"));
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))
        })
        .collect::<Result<_, _>>()?;
    let merged = star_exec::merge_shard_csvs(&partials).map_err(|e| e.to_string())?;
    if merged != reference {
        return Err("merged shard CSVs differ from the unsharded run".to_string());
    }
    println!("==> shard-smoke: merged 2 shards byte-identical to the unsharded CSV");
    Ok(())
}

/// Path of a release-profile binary built by the `build` step.
fn release_bin(name: &str) -> PathBuf {
    Path::new("target/release").join(format!("{name}{}", env::consts::EXE_SUFFIX))
}

/// A spawned `star-serve` child with the ephemeral address it reported on
/// its handshake line.
struct ServeDaemon {
    child: Child,
    addr: String,
}

/// Launches `target/release/star-serve` on an ephemeral port (with any
/// extra flags, e.g. `--shards`/`--prewarm`) and parses the
/// `star-serve listening on HOST:PORT` handshake from its stdout.  The
/// handshake only prints after prewarming finishes, so a caller never
/// races a cold cache it asked to be warm.
fn spawn_daemon(extra: &[&str]) -> Result<ServeDaemon, String> {
    let binary = release_bin("star-serve");
    let mut child = Command::new(&binary)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", binary.display()))?;
    let stdout = child.stdout.take().ok_or("daemon stdout was not captured")?;
    let mut line = String::new();
    if let Err(e) = BufReader::new(stdout).read_line(&mut line) {
        let _ = child.kill();
        let _ = child.wait();
        return Err(format!("reading daemon handshake: {e}"));
    }
    match line.trim().strip_prefix("star-serve listening on ") {
        Some(addr) if !addr.is_empty() => Ok(ServeDaemon { child, addr: addr.to_string() }),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            Err(format!("unexpected daemon handshake: {line:?}"))
        }
    }
}

/// The serving contract, checked end to end in two launches.
///
/// **Cold:** a deterministic query mix replayed twice; every `result`
/// payload byte-identical to a batch [`star_workloads::ModelBackend`]
/// solve, the whole second pass served from the solve cache, and a clean
/// drain through the wire `shutdown` op.
///
/// **Prewarmed:** a daemon launched with `--shards 4 --prewarm pool` must
/// answer its *first* query per pool configuration as an `exact` cache hit
/// with the same byte-identity, then survive a
/// `star-load --connections 4` replay with zero error responses.
fn serve_smoke() -> Result<(), String> {
    cold_serve_smoke()?;
    prewarmed_serve_smoke()
}

/// The cold half of [`serve_smoke`].
fn cold_serve_smoke() -> Result<(), String> {
    use star_workloads::{encode_estimate, Evaluator, ModelBackend, Scenario};

    println!("\n==> serve-smoke: daemon round-trip vs batch ModelBackend");
    let started = Instant::now();
    // (wire fields, equivalent batch scenario, rate) — distinct rates so the
    // first pass is all cold solves and the second pass is all cache hits
    let mut cases: Vec<(String, Scenario, f64)> = Vec::new();
    for rate in [0.001, 0.002, 0.003] {
        cases.push((
            format!("\"topology\":\"star\",\"size\":4,\"m\":16,\"rate\":{rate}"),
            Scenario::star(4).with_message_length(16),
            rate,
        ));
    }
    for rate in [0.0005, 0.001] {
        cases.push((
            format!("\"topology\":\"hypercube\",\"size\":5,\"rate\":{rate}"),
            Scenario::hypercube(5),
            rate,
        ));
    }
    let backend = ModelBackend::new();
    let expected: Vec<String> =
        cases.iter().map(|(_, s, r)| encode_estimate(&backend.evaluate(&s.at(*r)))).collect();

    let mut daemon = spawn_daemon(&[])?;
    let outcome = (|| -> Result<(), String> {
        let stream = TcpStream::connect(&daemon.addr)
            .map_err(|e| format!("connecting to {}: {e}", daemon.addr))?;
        let _ = stream.set_nodelay(true);
        let mut reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cloning stream: {e}"))?);
        let mut writer = &stream;
        let mut next_line = || -> Result<String, String> {
            let mut line = String::new();
            reader.read_line(&mut line).map_err(|e| format!("reading response: {e}"))?;
            Ok(line)
        };
        for (pass, expect_cached) in [(1u64, "cold"), (2, "exact")] {
            let mut batch = String::new();
            for (i, (fields, _, _)) in cases.iter().enumerate() {
                let id = pass * 100 + i as u64;
                batch.push_str(&format!("{{\"id\":{id},{fields},\"mode\":\"exact\"}}\n"));
            }
            writer.write_all(batch.as_bytes()).map_err(|e| format!("writing pass {pass}: {e}"))?;
            for (i, (fields, _, _)) in cases.iter().enumerate() {
                let id = pass * 100 + i as u64;
                let response = next_line()?;
                let prefix = format!(
                    "{{\"id\":{id},\"status\":\"ok\",\"cached\":\"{expect_cached}\",\"hits\":"
                );
                if !response.starts_with(&prefix) {
                    return Err(format!(
                        "pass {pass} query {{{fields}}}: expected {expect_cached}, got {response:?}"
                    ));
                }
                if expect_cached == "exact" {
                    let hits: u64 = response[prefix.len()..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .map_err(|e| format!("unparseable hit counter in {response:?}: {e}"))?;
                    if hits == 0 {
                        return Err(format!("cached response reports zero hits: {response:?}"));
                    }
                }
                let suffix = format!("\"result\":{}}}\n", expected[i]);
                if !response.ends_with(&suffix) {
                    return Err(format!(
                        "pass {pass} query {{{fields}}}: daemon answer diverges from the batch \
                         ModelBackend solve\n  daemon: {response:?}\n  batch result: {:?}",
                        expected[i]
                    ));
                }
            }
        }
        writer
            .write_all(b"{\"op\":\"stats\",\"id\":900}\n{\"op\":\"shutdown\",\"id\":901}\n")
            .map_err(|e| format!("writing stats/shutdown: {e}"))?;
        let stats = next_line()?;
        if !stats.starts_with("{\"id\":900,\"status\":\"ok\",\"stats\":") {
            return Err(format!("unexpected stats response: {stats:?}"));
        }
        let shutdown = next_line()?;
        if shutdown.trim() != "{\"id\":901,\"status\":\"ok\",\"shutdown\":true}" {
            return Err(format!("unexpected shutdown response: {shutdown:?}"));
        }
        Ok(())
    })();
    if outcome.is_err() {
        let _ = daemon.child.kill();
    }
    let status = daemon.child.wait().map_err(|e| format!("waiting for daemon: {e}"))?;
    outcome?;
    if !status.success() {
        return Err(format!("daemon exited with {status}"));
    }
    println!(
        "==> serve-smoke: {} queries byte-identical to batch, second pass cached, clean drain \
         ({:.1}s)",
        cases.len() * 2,
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// The prewarmed half of [`serve_smoke`]: sharded cache, `--prewarm pool`,
/// first-query exact hits, and a zero-error `--connections 4` replay.
fn prewarmed_serve_smoke() -> Result<(), String> {
    use star_workloads::{
        default_config_pool, encode_estimate, load_rate_grid, Evaluator, ModelBackend,
    };

    println!("\n==> serve-smoke: prewarmed daemon (4 shards, pool) + --connections 4 load");
    let started = Instant::now();
    const PREWARM_RATES: usize = 6;
    let mut daemon = spawn_daemon(&[
        "--shards",
        "4",
        "--prewarm",
        "pool",
        "--prewarm-rates",
        &PREWARM_RATES.to_string(),
    ])?;
    let outcome = (|| -> Result<(), String> {
        let backend = ModelBackend::new();
        let stream = TcpStream::connect(&daemon.addr)
            .map_err(|e| format!("connecting to {}: {e}", daemon.addr))?;
        let _ = stream.set_nodelay(true);
        let mut reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cloning stream: {e}"))?);
        let mut writer = &stream;
        // the daemon has served nothing yet: its first query per pool
        // configuration, at a mid-grid rate, must already be an exact hit
        // and byte-identical to the batch solve of the same point
        for (i, wire) in default_config_pool().iter().enumerate() {
            let scenario = wire.scenario();
            let rate = load_rate_grid(&scenario, PREWARM_RATES)[PREWARM_RATES / 2];
            let expected = encode_estimate(&backend.evaluate(&scenario.at(rate)));
            let request = format!(
                "{{\"id\":{i},\"topology\":\"{}\",\"size\":{},\"discipline\":\"{}\",\"vc\":{},\
                 \"m\":{},\"rate\":{rate},\"mode\":\"exact\"}}\n",
                wire.kind.name(),
                wire.size,
                wire.discipline.name(),
                wire.virtual_channels,
                wire.message_length,
            );
            writer.write_all(request.as_bytes()).map_err(|e| format!("writing query {i}: {e}"))?;
            let mut response = String::new();
            reader.read_line(&mut response).map_err(|e| format!("reading response {i}: {e}"))?;
            let prefix = format!("{{\"id\":{i},\"status\":\"ok\",\"cached\":\"exact\",\"hits\":");
            if !response.starts_with(&prefix) {
                return Err(format!(
                    "prewarmed first query {} was not an exact hit: {response:?}",
                    wire.network_label()
                ));
            }
            let suffix = format!("\"result\":{expected}}}\n");
            if !response.ends_with(&suffix) {
                return Err(format!(
                    "prewarmed answer for {} diverges from the batch ModelBackend solve\n  \
                     daemon: {response:?}\n  batch result: {expected:?}",
                    wire.network_label()
                ));
            }
        }
        drop(reader);
        drop(stream);
        // a multi-connection replay over the same grid: star-load exits
        // non-zero on any error response, and --shutdown drains the daemon
        let load = release_bin("star-load");
        let args = [
            "--addr",
            &daemon.addr,
            "--queries",
            "800",
            "--seed",
            "7",
            "--warm-fraction",
            "0.5",
            "--pipeline",
            "8",
            "--connections",
            "4",
            "--rates",
            &PREWARM_RATES.to_string(),
            "--shutdown",
        ];
        println!("==> star-load {}", args.join(" "));
        let status = Command::new(&load)
            .args(args)
            .status()
            .map_err(|e| format!("spawning {}: {e}", load.display()))?;
        if !status.success() {
            return Err(format!("star-load --connections 4 exited with {status}"));
        }
        Ok(())
    })();
    if outcome.is_err() {
        let _ = daemon.child.kill();
    }
    let status = daemon.child.wait().map_err(|e| format!("waiting for daemon: {e}"))?;
    outcome?;
    if !status.success() {
        return Err(format!("daemon exited with {status}"));
    }
    println!(
        "==> serve-smoke: prewarmed first queries hit exact byte-identically, \
         4-connection replay clean ({:.1}s)",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `cargo xtask serve-bench`: build, launch the daemon, replay the pinned
/// `star-load` stream and append the measurement to `BENCH_serve.json`.
fn serve_bench(rest: &[String]) -> ExitCode {
    if let Err(e) = step("build", &["build", "--release", "-p", "star-serve", "-p", "star-bench"]) {
        eprintln!("\nserve-bench FAILED at {e}");
        return ExitCode::FAILURE;
    }
    // the pinned daemon configuration: the sharded cache at its default
    // width, prewarmed with the very pool star-load draws from
    let daemon =
        match spawn_daemon(&["--shards", "8", "--prewarm", "pool", "--prewarm-rates", "24"]) {
            Ok(daemon) => daemon,
            Err(e) => {
                eprintln!("\nserve-bench FAILED: {e}");
                return ExitCode::FAILURE;
            }
        };
    let mut daemon = daemon;
    println!("==> star-serve listening on {}", daemon.addr);
    let load = release_bin("star-load");
    // the pinned trajectory configuration; forwarded args come last so they
    // win over the pins (star-load's parser keeps the last assignment)
    let mut args: Vec<String> = [
        "--addr",
        &daemon.addr,
        "--queries",
        "2000",
        "--seed",
        "7",
        "--warm-fraction",
        "0.5",
        "--pipeline",
        "8",
        "--connections",
        "4",
        "--rates",
        "24",
        "--json",
        "BENCH_serve.json",
        "--shutdown",
    ]
    .map(str::to_string)
    .to_vec();
    args.extend(rest.iter().filter(|a| a.as_str() != "--").cloned());
    println!("==> star-load {}", args.join(" "));
    let load_status = Command::new(&load).args(&args).status();
    if !matches!(&load_status, Ok(status) if status.success()) {
        // star-load never reached the shutdown op: don't wait on a live daemon
        let _ = daemon.child.kill();
    }
    let daemon_status = daemon.child.wait();
    match (load_status, daemon_status) {
        (Ok(load), Ok(served)) if load.success() && served.success() => {
            println!("\nserve-bench: measurement appended to BENCH_serve.json");
            ExitCode::SUCCESS
        }
        (Ok(load), Ok(served)) => {
            eprintln!("\nserve-bench FAILED: star-load exited {load}, star-serve exited {served}");
            ExitCode::FAILURE
        }
        (load, served) => {
            eprintln!("\nserve-bench FAILED: star-load {load:?}, star-serve {served:?}");
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask sim-bench`: build, run the pinned flit-throughput scenario
/// at every utilisation point (light/moderate/heavy) on both simulator
/// engines and append one measurement per point to `BENCH_sim.json`.
fn sim_bench(rest: &[String]) -> ExitCode {
    if let Err(e) = step("build", &["build", "--release", "-p", "star-bench"]) {
        eprintln!("\nsim-bench FAILED at {e}");
        return ExitCode::FAILURE;
    }
    let binary = release_bin("sim-bench");
    // the pinned trajectory configuration; forwarded args come last so they
    // win over the pins (sim-bench's parser keeps the last assignment)
    let mut args: Vec<String> = [
        "--messages",
        "20000",
        "--seed",
        "42",
        "--points",
        "light,moderate,heavy",
        "--json",
        "BENCH_sim.json",
    ]
    .map(str::to_string)
    .to_vec();
    args.extend(rest.iter().filter(|a| a.as_str() != "--").cloned());
    println!("==> sim-bench {}", args.join(" "));
    // the trajectory file actually written (a forwarded --json overrides the pin)
    let json = args.iter().rposition(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    match Command::new(&binary).args(&args).status() {
        Ok(status) if status.success() => {
            println!(
                "\nsim-bench: measurement appended to {}",
                json.as_deref().unwrap_or("the trajectory file")
            );
            ExitCode::SUCCESS
        }
        Ok(status) => {
            eprintln!("\nsim-bench FAILED: sim-bench exited with {status}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("\nsim-bench FAILED: spawning {}: {e}", binary.display());
            ExitCode::FAILURE
        }
    }
}

fn figure1(rest: &[String]) -> ExitCode {
    let mut args: Vec<&str> =
        vec!["run", "--release", "-p", "star-bench", "--bin", "figure1", "--"];
    let forwarded: Vec<&str> = rest.iter().map(String::as_str).filter(|a| *a != "--").collect();
    let has_budget = forwarded.iter().any(|a| *a == "--budget" || a.starts_with("--budget="));
    let has_threads = forwarded.iter().any(|a| *a == "--threads" || a.starts_with("--threads="));
    args.extend(forwarded);
    if !has_budget {
        args.extend(["--budget", "quick"]);
    }
    if !has_threads {
        // 0 = all available parallelism (the SweepRunner convention)
        args.extend(["--threads", "0"]);
    }
    match step("figure1", &args) {
        Ok(()) => {
            println!("\nFigure 1 CSVs are under target/experiments/");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("\nfigure1 FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn merge_shards(rest: &[String]) -> ExitCode {
    let out_index = rest.iter().position(|a| a == "--out");
    let Some(out_index) = out_index else {
        eprintln!("usage: cargo xtask merge-shards --out <merged.csv> <partial.csv>...");
        return ExitCode::FAILURE;
    };
    let Some(out_path) = rest.get(out_index + 1) else {
        eprintln!("--out needs a file path");
        return ExitCode::FAILURE;
    };
    let inputs: Vec<&String> = rest
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != out_index && i != out_index + 1)
        .map(|(_, a)| a)
        .collect();
    if inputs.is_empty() {
        eprintln!("no partial CSVs given");
        return ExitCode::FAILURE;
    }
    let mut partials = Vec::with_capacity(inputs.len());
    for path in &inputs {
        match fs::read_to_string(path) {
            Ok(content) => partials.push(content),
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match star_exec::merge_shard_csvs(&partials) {
        Ok(merged) => {
            if let Some(parent) = Path::new(out_path).parent() {
                let _ = fs::create_dir_all(parent);
            }
            if let Err(e) = fs::write(out_path, merged) {
                eprintln!("could not write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("merged {} partial(s) into {out_path}", inputs.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}
