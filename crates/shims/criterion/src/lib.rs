//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The workspace builds in environments without access to crates.io, so the
//! real `criterion` cannot be vendored.  This crate keeps the bench sources
//! unchanged (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `benchmark_group` / `Bencher::iter`) and implements two modes:
//!
//! * **`--test` mode** (what `cargo bench -- --test` and the CI smoke run
//!   use): every registered benchmark body runs exactly once, so a bench that
//!   panics or regresses into non-termination fails the pipeline;
//! * **measurement mode** (plain `cargo bench`): each benchmark is warmed up
//!   briefly, then timed over adaptive batches until the measurement window
//!   is exhausted, and the mean, minimum and iteration count are printed in a
//!   `name ... time: [mean]` line loosely shaped like criterion's output.
//!
//! There is no statistical machinery (no outlier analysis, no HTML reports);
//! the point is a stable entry point whose numbers are good enough to spot
//! order-of-magnitude changes until the real criterion can be dropped in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver: registers and runs benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    default_measurement: Duration,
}

impl Criterion {
    /// Builds a driver from the process arguments.
    ///
    /// Recognises `--test` (run every benchmark body once); every other flag
    /// cargo forwards (`--bench`, filters) is accepted and ignored.
    #[must_use]
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode, default_measurement: Duration::from_secs(3) }
    }

    /// Whether the driver is in `--test` smoke mode.
    #[must_use]
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), measurement_time: None }
    }

    /// Registers and runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let window = self.default_measurement;
        run_one(self.test_mode, &name.into(), window, f);
    }

    /// Prints the closing line (kept for call-site compatibility).
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("(smoke mode: every benchmark body ran once)");
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for compatibility; the stand-in
    /// sizes its batches from the measurement window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    /// Registers and runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let window = self.measurement_time.unwrap_or(self.criterion.default_measurement);
        run_one(self.criterion.test_mode, &full, window, f);
        self
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; [`Bencher::iter`] runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    window: Duration,
    /// (total iterations, total time) accumulated by `iter`.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Runs `routine` — once in `--test` mode, otherwise repeatedly for the
    /// measurement window — and records the timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let _ = std::hint::black_box(routine());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up: run once to page everything in and get a cost estimate.
        let start = Instant::now();
        let _ = std::hint::black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        // Size batches so each batch costs roughly 1/20 of the window.
        let per_batch = (self.window.as_nanos() / 20 / first.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.window {
            for _ in 0..per_batch {
                let _ = std::hint::black_box(routine());
            }
            iters += per_batch;
        }
        self.measured = Some((iters, measure_start.elapsed()));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, name: &str, window: Duration, mut f: F) {
    let mut bencher = Bencher { test_mode, window, measured: None };
    f(&mut bencher);
    match bencher.measured {
        Some((1, _)) if test_mode => println!("{name}: ok (ran once, --test mode)"),
        Some((iters, total)) if iters > 0 => {
            let mean = total.as_nanos() as f64 / iters as f64;
            println!("{name}  time: [{} /iter over {iters} iterations]", fmt_ns(mean));
        }
        _ => println!("{name}: no measurement recorded"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_exactly_once() {
        let mut count = 0usize;
        let mut b = Bencher { test_mode: true, window: Duration::from_secs(1), measured: None };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.measured, Some((1, Duration::ZERO)));
    }

    #[test]
    fn measurement_mode_runs_many_iterations() {
        let mut count = 0u64;
        let mut b = Bencher { test_mode: false, window: Duration::from_millis(20), measured: None };
        b.iter(|| count += 1);
        let (iters, total) = b.measured.unwrap();
        // the warm-up call runs the routine once more than the measured count
        assert_eq!(iters + 1, count);
        assert!(iters > 1);
        assert!(total >= Duration::from_millis(20));
    }

    #[test]
    fn groups_accept_settings_and_run() {
        let mut c = Criterion { test_mode: true, default_measurement: Duration::from_secs(1) };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .measurement_time(Duration::from_secs(5))
                .bench_function("f", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }

    #[test]
    fn format_covers_magnitudes() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
