//! Offline stand-in for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The workspace builds in environments without access to crates.io, so the
//! real `rand` cannot be vendored.  This crate reimplements exactly the
//! surface the simulator and the sampling layer call:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded from 32
//!   bytes (the real `StdRng` makes no cross-version reproducibility promise,
//!   so a different algorithm behind the same name is fair game);
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`;
//! * [`Rng`] — `random::<T>()` for `f64`/`u64`/`u32`/`bool` and
//!   `random_range(start..end)` for unsigned integer ranges;
//! * [`seq::IndexedRandom`] — `slice.choose(&mut rng)`.
//!
//! Statistical quality matters here: the simulator's validation tests check
//! uniformity, Poisson dispersion and stream separation, all of which
//! xoshiro256** passes comfortably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a single `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift keeps the bias below 2^-64 * span
                // without a rejection loop (plenty for simulation sampling).
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

impl_uint_range!(u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator.
    ///
    /// Like the real `StdRng`, the algorithm behind this name is not a
    /// reproducibility contract — only determinism for a fixed seed is.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut s: [u64; 4]) -> Self {
            // xoshiro must not be seeded with all zeros; scramble via SplitMix64.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Self::from_state(s)
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self::from_state([next(), next(), next(), next()])
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniformly choosing elements of a slice by index.
    pub trait IndexedRandom {
        /// The element type.
        type Output: ?Sized;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_is_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.random_range(0..10usize)] += 1;
        }
        let expected = trials as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bin {i}: {c} deviates {rel}");
        }
    }

    #[test]
    fn choose_covers_all_elements_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4, 5];
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn all_zero_seed_is_rescued() {
        let mut rng = StdRng::from_seed([0; 32]);
        let xs: Vec<u64> = (0..4).map(|_| rng.random()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }
}
