//! Offline stand-in for the `serde` derive macros.
//!
//! The workspace builds in environments without access to crates.io, so the
//! real `serde` cannot be vendored.  Nothing in the workspace serializes at
//! runtime today — the `#[derive(Serialize, Deserialize)]` attributes on the
//! domain types only declare intent for future wire formats — so this crate
//! provides the two derive macros as no-ops: they parse to an empty token
//! stream and generate no impls.
//!
//! Swapping in the real `serde` later is a one-line change in the workspace
//! manifest; no source file needs to change because the derive invocations
//! and `use serde::{Deserialize, Serialize}` imports are already in place.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
