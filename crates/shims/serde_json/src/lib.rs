//! Offline stand-in for the subset of the `serde_json` API the star-serve
//! wire protocol uses.
//!
//! The workspace builds in environments without access to crates.io, so the
//! real `serde_json` cannot be vendored.  The serving layer
//! (`crates/serve`) speaks line-delimited JSON over TCP, which needs exactly
//! one runtime surface: a [`Value`] tree, [`from_str`] to decode a line and
//! [`to_string`] / [`Value`]'s `Display` to encode one.  This crate
//! implements that surface — and nothing more — API-compatible with the
//! real `serde_json` so the swap documented in the workspace manifest stays
//! a one-line change (the sibling `serde` shim covers the derive macros the
//! same way).
//!
//! Two deliberate deviations from the real crate, both in the direction the
//! wire protocol needs:
//!
//! * **Objects preserve insertion order** (the real crate sorts keys unless
//!   its `preserve_order` feature is on).  The serving protocol's
//!   byte-identity contract — the same query must produce the same response
//!   bytes — needs field order to be a pure function of the encoder, not of
//!   key collation.
//! * **Numbers are `f64`** (the real crate has a lossless `Number`).  Every
//!   numeric field on the wire — rates, latencies, counters — fits: `u64`
//!   counters stay exact below 2^53 and f64 round-trips are bit-exact
//!   (encoding uses Rust's shortest-round-trip formatting, decoding is
//!   `str::parse::<f64>`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error as StdError;
use std::fmt;

/// A parsed JSON value.  Objects preserve insertion order (see the crate
/// docs for why).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for integers below 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value of an object field, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one (integral,
    /// non-negative, below 2^53 so the `f64` carries it losslessly).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    /// Non-finite values encode as `null` (JSON has no spelling for them),
    /// matching the real crate's lossy f64 serialization.
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(v)
        } else {
            Value::Null
        }
    }
}

impl From<u64> for Value {
    #[allow(clippy::cast_precision_loss)]
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

/// Appends the JSON escaping of `s` (quotes included) to `out`.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the canonical number spelling to `out`: integers without a
/// fractional part (exact below 2^53), everything else in Rust's shortest
/// round-trip form, so encode → decode reproduces the exact bits.
fn write_number(out: &mut String, n: f64) {
    #[allow(clippy::cast_possible_truncation)]
    if n == 0.0 {
        out.push('0');
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) if !n.is_finite() => out.push_str("null"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    /// Compact (no-whitespace) JSON, object fields in insertion order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self);
        f.write_str(&out)
    }
}

/// Encodes a value as compact JSON (the `Display` form).
#[must_use]
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What was wrong.
    message: String,
    /// Byte offset into the input where the problem was noticed.
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl StdError for Error {}

/// Parses one JSON document (surrounding whitespace tolerated, trailing
/// garbage rejected).
///
/// # Errors
/// Returns an [`Error`] naming the first offending byte offset.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth cap: a wire line nests two or three levels; 128 keeps any
/// hostile input from exhausting the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", char::from(byte))))
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {literal:?}")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        match token.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => {
                self.pos = start;
                Err(self.error("malformed number"))
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&first) {
                                // surrogate pair: the low half must follow
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.error("unpaired surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else {
                                first
                            };
                            match char::from_u32(scalar) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            // parse_hex4 advanced past the digits already
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 passes through verbatim: the input is
                    // a &str, so byte boundaries are sound
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input started as valid UTF-8");
                    let c = rest.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let scalar = u32::from_str_radix(digits, 16)
            .map_err(|_| self.error("non-hex digits in \\u escape"))?;
        self.pos += 4;
        Ok(scalar)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(json: &str) -> String {
        to_string(&from_str(json).unwrap())
    }

    #[test]
    fn parses_the_wire_shapes() {
        let line = r#"{"op":"query","id":1,"topology":"star","size":5,"rate":0.004}"#;
        let v = from_str(line).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("query"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("rate").and_then(Value::as_f64), Some(0.004));
        assert_eq!(v.get("missing"), None);
        // encode preserves field insertion order → the exact input bytes
        assert_eq!(to_string(&v), line);
        assert_eq!(format!("{v}"), line);
    }

    #[test]
    fn scalars_and_containers_round_trip() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "0.004",
            "\"hi\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            r#"{"b":1,"a":[true,null]}"#,
        ] {
            assert_eq!(roundtrip(json), json, "{json}");
        }
        // whitespace is tolerated on decode, dropped on encode
        assert_eq!(roundtrip(" { \"a\" : [ 1 , 2 ] } "), r#"{"a":[1,2]}"#);
        // exponent spellings parse; encoding is positional (Rust's `{}`),
        // which still reproduces the exact bits on re-parse
        assert_eq!(from_str("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(roundtrip("1e3"), "1000");
    }

    #[test]
    fn f64_bits_survive_the_wire() {
        for bits in [0.004f64, 1.0 / 3.0, 74.330_213_477_6, f64::MIN_POSITIVE, 9e15 + 1.0, 1e-300] {
            let encoded = to_string(&Value::from(bits));
            let back = from_str(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits.to_bits(), "{bits} -> {encoded}");
        }
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(to_string(&Value::from(42u64)), "42");
        assert_eq!(to_string(&Value::Number(2.0)), "2");
        assert_eq!(to_string(&Value::Number(-0.0)), "0");
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("2.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(to_string(&Value::from(f64::INFINITY)), "null");
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert!(Value::from(f64::NAN).is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::from("a\"b\\c\nd\te\u{08}\u{0C}\u{1}é😀");
        let encoded = to_string(&v);
        assert_eq!(from_str(&encoded).unwrap(), v);
        // the \u escape and surrogate-pair decode path
        assert_eq!(from_str(r#""\u00e9\ud83d\ude00\/""#).unwrap(), Value::from("é😀/"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "1 2",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "\"bad\\qescape\"",
            "\"\\ud800alone\"",
            "01a",
            "--3",
            "[1]]",
            "{\"a\":1,}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} must not parse");
        }
        let err = from_str("[true, oops]").unwrap_err();
        assert!(err.to_string().contains("byte 7"), "{err}");
    }

    #[test]
    fn accessors_answer_only_their_own_shape() {
        let v = from_str(r#"{"a":[1],"s":"x","b":true}"#).unwrap();
        assert!(v.as_array().is_none());
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.as_object().unwrap().len(), 3);
        assert!(v.get("a").unwrap().get("nested").is_none());
        assert!(!v.is_null());
        assert!(from_str("null").unwrap().is_null());
    }
}
