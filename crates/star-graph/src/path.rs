//! Minimal-path DAGs and per-hop adaptivity profiles.
//!
//! The analytical model needs, for every destination `i` and every hop `k`
//! along a minimal path, the number `f(i, j, k)` of alternative output
//! channels a fully adaptive minimal router can offer (Eq. 7-8 of the paper).
//! Rather than enumerating every minimal path explicitly, this module builds
//! the DAG of all intermediate nodes lying on *some* minimal path and runs a
//! prefix/suffix path-counting DP; the result is, per hop index, the exact
//! distribution of the adaptivity over all minimal paths with uniform path
//! weighting — exactly the averaging performed by Eq. (7).

use crate::permutation::Permutation;
use std::collections::HashMap;

/// The DAG of nodes lying on at least one minimal path from a source
/// permutation (expressed *relative to the destination*) to the identity.
#[derive(Debug, Clone)]
pub struct MinimalPathDag {
    /// Relative source permutation.
    source: Permutation,
    /// Nodes grouped by hops already taken (level 0 = source,
    /// level `distance` = identity).
    levels: Vec<Vec<Permutation>>,
    /// Number of minimal suffix paths from each node to the identity.
    suffix_counts: HashMap<Permutation, u128>,
    /// Number of minimal prefix paths from the source to each node.
    prefix_counts: HashMap<Permutation, u128>,
}

/// Per-hop adaptivity statistics of all minimal paths toward one destination,
/// uniformly weighted over paths — the `f(i, j, k)` information consumed by
/// the blocking-probability equations of the analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivityProfile {
    /// Distance (number of hops) to the destination.
    pub distance: usize,
    /// Total number of minimal paths.
    pub path_count: u128,
    /// `hop_adaptivity[k]` is the distribution of the number of profitable
    /// output channels available when taking hop `k + 1`, as
    /// `(adaptivity, probability)` pairs with probabilities summing to 1.
    pub hop_adaptivity: Vec<Vec<(usize, f64)>>,
}

impl AdaptivityProfile {
    /// Mean adaptivity at hop `k + 1` (0-based index `k`).
    ///
    /// # Panics
    /// Panics if `k >= distance`.
    #[must_use]
    pub fn mean_adaptivity(&self, k: usize) -> f64 {
        self.hop_adaptivity[k].iter().map(|&(f, p)| f as f64 * p).sum()
    }

    /// Averages `g(f)` over the adaptivity distribution at hop `k + 1`;
    /// used by the model to evaluate `E[P_chan ^ f]`.
    ///
    /// # Panics
    /// Panics if `k >= distance`.
    #[must_use]
    pub fn expect_over_adaptivity(&self, k: usize, mut g: impl FnMut(usize) -> f64) -> f64 {
        self.hop_adaptivity[k].iter().map(|&(f, p)| g(f) * p).sum()
    }
}

impl MinimalPathDag {
    /// Builds the minimal-path DAG for routing `relative_source` to the
    /// identity permutation.
    #[must_use]
    pub fn build(relative_source: &Permutation) -> Self {
        let distance = relative_source.distance_to_identity();
        let mut levels: Vec<Vec<Permutation>> = vec![Vec::new(); distance + 1];
        let mut discovered: HashMap<Permutation, usize> = HashMap::new();
        levels[0].push(*relative_source);
        discovered.insert(*relative_source, 0);
        // Forward sweep: profitable successors only, so every discovered node
        // lies on a minimal path prefix.
        for level in 0..distance {
            let current: Vec<Permutation> = levels[level].clone();
            for node in current {
                for dim in node.profitable_dimensions() {
                    let next = node.apply_generator(dim);
                    if let std::collections::hash_map::Entry::Vacant(e) = discovered.entry(next) {
                        e.insert(level + 1);
                        levels[level + 1].push(next);
                    }
                }
            }
        }
        debug_assert_eq!(levels[distance], vec![Permutation::identity(relative_source.len())]);

        // Suffix counts: paths from node to identity, processed bottom-up.
        let mut suffix_counts: HashMap<Permutation, u128> = HashMap::new();
        suffix_counts.insert(Permutation::identity(relative_source.len()), 1);
        for level in (0..distance).rev() {
            for node in &levels[level] {
                let total: u128 = node
                    .profitable_dimensions()
                    .into_iter()
                    .map(|dim| suffix_counts[&node.apply_generator(dim)])
                    .sum();
                suffix_counts.insert(*node, total);
            }
        }

        // Prefix counts: paths from source to node, processed top-down.
        let mut prefix_counts: HashMap<Permutation, u128> = HashMap::new();
        prefix_counts.insert(*relative_source, 1);
        for level_nodes in levels.iter().take(distance) {
            for node in level_nodes {
                let from = prefix_counts[node];
                for dim in node.profitable_dimensions() {
                    *prefix_counts.entry(node.apply_generator(dim)).or_insert(0) += from;
                }
            }
        }

        Self { source: *relative_source, levels, suffix_counts, prefix_counts }
    }

    /// The relative source permutation this DAG was built for.
    #[must_use]
    pub fn source(&self) -> &Permutation {
        &self.source
    }

    /// Distance from source to destination.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.levels.len() - 1
    }

    /// Total number of minimal paths from the source to the destination.
    #[must_use]
    pub fn path_count(&self) -> u128 {
        self.suffix_counts[&self.source]
    }

    /// Nodes at a given level (`level` hops taken from the source).
    ///
    /// # Panics
    /// Panics if `level > distance`.
    #[must_use]
    pub fn level(&self, level: usize) -> &[Permutation] {
        &self.levels[level]
    }

    /// Fraction of minimal paths passing through `node` (0 if the node is not
    /// in the DAG).
    #[must_use]
    pub fn node_weight(&self, node: &Permutation) -> f64 {
        match (self.prefix_counts.get(node), self.suffix_counts.get(node)) {
            (Some(&a), Some(&b)) => (a * b) as f64 / self.path_count() as f64,
            _ => 0.0,
        }
    }

    /// The per-hop adaptivity profile (distribution of the number of
    /// profitable output channels at each hop, uniformly weighted over all
    /// minimal paths).
    #[must_use]
    pub fn adaptivity_profile(&self) -> AdaptivityProfile {
        let distance = self.distance();
        let total = self.path_count();
        let mut hop_adaptivity = Vec::with_capacity(distance);
        for level in 0..distance {
            // accumulate exact u128 path counts per adaptivity value and
            // divide once, so the resulting probabilities are independent of
            // node iteration order (and bit-identical to any other builder
            // that sums the same integers)
            let mut sums: std::collections::BTreeMap<usize, u128> =
                std::collections::BTreeMap::new();
            for node in &self.levels[level] {
                *sums.entry(node.adaptivity()).or_insert(0) +=
                    self.prefix_counts[node] * self.suffix_counts[node];
            }
            hop_adaptivity
                .push(sums.into_iter().map(|(f, s)| (f, s as f64 / total as f64)).collect());
        }
        AdaptivityProfile { distance, path_count: self.path_count(), hop_adaptivity }
    }

    /// Enumerates every minimal path explicitly (sequence of visited
    /// permutations including both endpoints).  Intended for tests and small
    /// distances only; the number of paths grows quickly with distance.
    #[must_use]
    pub fn enumerate_paths(&self) -> Vec<Vec<Permutation>> {
        let mut out = Vec::new();
        let mut current = vec![self.source];
        fn rec(
            node: &Permutation,
            current: &mut Vec<Permutation>,
            out: &mut Vec<Vec<Permutation>>,
        ) {
            if node.is_identity() {
                out.push(current.clone());
                return;
            }
            for dim in node.profitable_dimensions() {
                let next = node.apply_generator(dim);
                current.push(next);
                rec(&next, current, out);
                current.pop();
            }
        }
        rec(&self.source, &mut current, &mut out);
        out
    }
}

/// Convenience: builds the adaptivity profile for routing from `source` to
/// `dest` (absolute node labels).
#[must_use]
pub fn profile_between(source: &Permutation, dest: &Permutation) -> AdaptivityProfile {
    MinimalPathDag::build(&source.relative_to(dest)).adaptivity_profile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorial;
    use crate::rank::unrank;

    fn p(sym: &[u8]) -> Permutation {
        Permutation::from_symbols(sym).unwrap()
    }

    #[test]
    fn identity_dag_is_trivial() {
        let dag = MinimalPathDag::build(&Permutation::identity(5));
        assert_eq!(dag.distance(), 0);
        assert_eq!(dag.path_count(), 1);
        let profile = dag.adaptivity_profile();
        assert!(profile.hop_adaptivity.is_empty());
    }

    #[test]
    fn single_swap_has_one_path() {
        let dag = MinimalPathDag::build(&p(&[2, 1, 3, 4]));
        assert_eq!(dag.distance(), 1);
        assert_eq!(dag.path_count(), 1);
        assert_eq!(dag.adaptivity_profile().hop_adaptivity[0], vec![(1, 1.0)]);
    }

    #[test]
    fn two_disjoint_transpositions() {
        // 2143: distance 4, adaptivity 3 at the first hop.
        let dag = MinimalPathDag::build(&p(&[2, 1, 4, 3]));
        assert_eq!(dag.distance(), 4);
        let profile = dag.adaptivity_profile();
        assert_eq!(profile.hop_adaptivity.len(), 4);
        assert_eq!(profile.mean_adaptivity(0), 3.0);
        // last hop is always forced
        assert_eq!(profile.hop_adaptivity[3], vec![(1, 1.0)]);
        // explicit enumeration agrees with the DP count
        assert_eq!(dag.enumerate_paths().len() as u128, dag.path_count());
    }

    #[test]
    fn path_count_matches_enumeration_for_all_s4_destinations() {
        let n = 4;
        for r in 1..factorial(n) {
            let rel = unrank(n, r);
            let dag = MinimalPathDag::build(&rel);
            let paths = dag.enumerate_paths();
            assert_eq!(paths.len() as u128, dag.path_count(), "count mismatch for {rel:?}");
            for path in &paths {
                assert_eq!(path.len(), dag.distance() + 1);
                assert_eq!(path[0], rel);
                assert!(path.last().unwrap().is_identity());
                for w in path.windows(2) {
                    assert_eq!(w[1].distance_to_identity() + 1, w[0].distance_to_identity());
                }
            }
        }
    }

    #[test]
    fn adaptivity_profile_probabilities_sum_to_one() {
        let n = 5;
        for r in (1..factorial(n)).step_by(7) {
            let profile = MinimalPathDag::build(&unrank(n, r)).adaptivity_profile();
            for hop in &profile.hop_adaptivity {
                let sum: f64 = hop.iter().map(|&(_, p)| p).sum();
                assert!((sum - 1.0).abs() < 1e-9, "probabilities must sum to 1");
                for &(f, p) in hop {
                    assert!(f >= 1, "adaptivity at a non-final node is at least 1");
                    assert!(p > 0.0 && p <= 1.0 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn hop_profile_matches_explicit_paths() {
        // Cross-check the DP-weighted distribution against brute-force path
        // enumeration for a distance-5 destination in S5.
        let rel = p(&[3, 4, 5, 1, 2]); // cycles (1 3 5 2 4): single 5-cycle
        let dag = MinimalPathDag::build(&rel);
        let paths = dag.enumerate_paths();
        let profile = dag.adaptivity_profile();
        for k in 0..dag.distance() {
            let mut hist: HashMap<usize, usize> = HashMap::new();
            for path in &paths {
                *hist.entry(path[k].adaptivity()).or_insert(0) += 1;
            }
            let expected: f64 = profile.mean_adaptivity(k);
            let direct: f64 =
                hist.iter().map(|(&f, &c)| f as f64 * c as f64).sum::<f64>() / paths.len() as f64;
            assert!((expected - direct).abs() < 1e-9, "hop {k} mean adaptivity mismatch");
        }
    }

    #[test]
    fn node_weights_sum_to_one_per_level() {
        let rel = p(&[5, 4, 3, 2, 1]);
        let dag = MinimalPathDag::build(&rel);
        for level in 0..=dag.distance() {
            let sum: f64 = dag.level(level).iter().map(|v| dag.node_weight(v)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "level {level} weights must sum to 1");
        }
        // nodes outside the DAG have weight 0
        assert_eq!(
            dag.node_weight(&p(&[2, 1, 3, 4, 5]).apply_generator(2).apply_generator(3)),
            0.0
        );
    }

    #[test]
    fn profile_depends_only_on_cycle_type() {
        // Two different permutations with the same type signature must have
        // identical adaptivity profiles.
        let a = MinimalPathDag::build(&p(&[2, 1, 4, 3, 5])).adaptivity_profile();
        let b = MinimalPathDag::build(&p(&[4, 3, 2, 1, 5])).adaptivity_profile();
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.path_count, b.path_count);
        for k in 0..a.distance {
            assert!((a.mean_adaptivity(k) - b.mean_adaptivity(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_between_absolute_nodes() {
        let src = p(&[3, 1, 4, 2, 5]);
        let dst = p(&[1, 3, 4, 2, 5]);
        let profile = profile_between(&src, &dst);
        assert_eq!(profile.distance, src.relative_to(&dst).distance_to_identity());
    }
}
