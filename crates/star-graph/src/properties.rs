//! Topological property summaries (the star-vs-hypercube comparison quoted in
//! the paper's Section 2).

use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row of topological properties for one network instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyProperties {
    /// Network name (e.g. `"S5"`).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Router degree.
    pub degree: usize,
    /// Diameter.
    pub diameter: usize,
    /// Number of unidirectional network channels.
    pub channels: usize,
    /// Mean minimal distance over ordered pairs of distinct nodes.
    pub mean_distance: f64,
}

impl TopologyProperties {
    /// Collects the properties of a topology.
    #[must_use]
    pub fn of(topology: &dyn Topology) -> Self {
        Self {
            name: topology.name(),
            nodes: topology.node_count(),
            degree: topology.degree(),
            diameter: topology.diameter(),
            channels: topology.channel_count(),
            mean_distance: topology.mean_distance(),
        }
    }

    /// Markdown table header matching [`fmt::Display`] rows.
    #[must_use]
    pub fn markdown_header() -> String {
        "| network | nodes | degree | diameter | channels | mean distance |\n|---|---|---|---|---|---|"
            .to_string()
    }
}

impl fmt::Display for TopologyProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "| {} | {} | {} | {} | {} | {:.4} |",
            self.name, self.nodes, self.degree, self.diameter, self.channels, self.mean_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hypercube, StarGraph};

    #[test]
    fn star_properties_row() {
        let props = TopologyProperties::of(&StarGraph::new(5));
        assert_eq!(props.name, "S5");
        assert_eq!(props.nodes, 120);
        assert_eq!(props.degree, 4);
        assert_eq!(props.diameter, 6);
        assert_eq!(props.channels, 480);
        assert!(props.mean_distance > 3.5 && props.mean_distance < 4.0);
        assert!(format!("{props}").starts_with("| S5 |"));
    }

    #[test]
    fn star_beats_equivalent_hypercube_on_degree_and_diameter_at_scale() {
        // The paper's Section 2 claim: degree and diameter of S_n are
        // sub-logarithmic in the node count, so for large enough networks the
        // star graph has both smaller degree and comparable diameter than the
        // hypercube with at least as many nodes.
        let s7 = TopologyProperties::of(&StarGraph::new(7));
        let q13 = TopologyProperties::of(&Hypercube::at_least(s7.nodes));
        assert!(s7.degree < q13.degree);
        assert!(s7.diameter <= q13.diameter + 1);
    }

    #[test]
    fn markdown_header_has_same_column_count_as_rows() {
        let header = TopologyProperties::markdown_header();
        let row = format!("{}", TopologyProperties::of(&Hypercube::new(4)));
        assert_eq!(header.lines().next().unwrap().matches('|').count(), row.matches('|').count());
    }
}
