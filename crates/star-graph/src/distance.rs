//! Exact distance statistics of the star graph.
//!
//! The paper's Eq. (2) uses the mean minimal distance `d̄` of `S_n`.  The OCR
//! of the published closed form is unreadable, so this module computes the
//! quantity exactly instead, in two independent ways that are cross-checked by
//! tests:
//!
//! 1. **Cycle-type enumeration** ([`star_distance_distribution`]): the
//!    distance from the identity to a permutation depends only on its cycle
//!    type (and on whether position 1 sits on a non-trivial cycle), so the
//!    whole distance distribution is obtained by enumerating integer
//!    partitions into parts `>= 2` and counting the permutations of each type
//!    with the standard cycle-index formula.  This runs in milliseconds even
//!    for `n` far beyond what can be simulated.
//! 2. **Direct enumeration** (used in tests for small `n`).

use crate::permutation::Permutation;
use crate::{factorial, MAX_SYMBOLS};
use serde::{Deserialize, Serialize};

/// A star-graph node *type*: the multiset of non-trivial cycle lengths of the
/// permutation (relative to the destination) plus the length of the cycle
/// through position 1 (1 when position 1 is a fixed point).
///
/// All permutations of the same type are equivalent for the analytical model:
/// they have the same distance, the same number of minimal paths and the same
/// per-hop adaptivity profile.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CycleType {
    /// Sorted (ascending) lengths of the non-trivial cycles.
    pub cycle_lengths: Vec<usize>,
    /// Length of the cycle containing position 1 (1 = fixed point).
    pub first_cycle_len: usize,
}

impl CycleType {
    /// The cycle type of a concrete permutation.
    #[must_use]
    pub fn of(perm: &Permutation) -> Self {
        let (cycle_lengths, first_cycle_len) = perm.type_signature();
        Self { cycle_lengths, first_cycle_len }
    }

    /// Total number of displaced symbols.
    #[must_use]
    pub fn displaced(&self) -> usize {
        self.cycle_lengths.iter().sum()
    }

    /// Star-graph distance to the destination for nodes of this type
    /// (Akers–Harel–Krishnamurthy formula).
    #[must_use]
    pub fn distance(&self) -> usize {
        let k = self.displaced();
        let c = self.cycle_lengths.len();
        if k == 0 {
            0
        } else if self.first_cycle_len == 1 {
            k + c
        } else {
            k + c - 2
        }
    }

    /// Number of permutations of `n` symbols with this type.
    ///
    /// # Panics
    /// Panics if the type does not fit in `n` symbols.
    #[must_use]
    pub fn count(&self, n: usize) -> u64 {
        let k = self.displaced();
        assert!(k <= n, "cycle type does not fit in {n} symbols");
        // multiplicity of each non-trivial cycle length
        let mut mult = std::collections::BTreeMap::new();
        for &l in &self.cycle_lengths {
            *mult.entry(l).or_insert(0u64) += 1;
        }
        // permutations with this unmarked cycle type:
        //   n! / ( Π_j j^{m_j} m_j!  ·  (n-k)! )
        // computed in f64-free integer arithmetic via u128 to avoid overflow.
        let mut denom: u128 = 1;
        for (&l, &m) in &mult {
            denom *= (l as u128).pow(m as u32);
            denom *= (1..=m as u128).product::<u128>();
        }
        denom *= (1..=(n - k) as u128).product::<u128>();
        let base = factorial(n) as u128 / denom;
        // fraction of those with symbol/position 1 located as required
        let marked = if self.first_cycle_len == 1 {
            // position 1 is a fixed point: (n - k) of the n positions are fixed
            base * (n - k) as u128 / n as u128
        } else {
            let l = self.first_cycle_len;
            let m =
                *mult.get(&l).expect("first cycle length must be one of the cycle lengths") as u128;
            base * (l as u128) * m / n as u128
        };
        u64::try_from(marked).expect("count fits in u64 for supported n")
    }

    /// A concrete permutation of `n` symbols with this cycle type (position 1
    /// lies on a cycle of length `first_cycle_len`).
    ///
    /// # Panics
    /// Panics if the type does not fit in `n` symbols or `n` is out of range.
    #[must_use]
    pub fn representative(&self, n: usize) -> Permutation {
        assert!((2..=MAX_SYMBOLS).contains(&n), "size {n} out of range");
        assert!(self.displaced() <= n, "cycle type does not fit in {n} symbols");
        let mut symbols: Vec<u8> = (1..=n as u8).collect();
        // Place cycles on consecutive position blocks.  A cycle on positions
        // p_1 < p_2 < … < p_L is realised as pos p_1 → symbol p_2, …,
        // pos p_L → symbol p_1.
        let place_cycle = |positions: &[usize], symbols: &mut Vec<u8>| {
            let l = positions.len();
            for i in 0..l {
                symbols[positions[i] - 1] = positions[(i + 1) % l] as u8;
            }
        };
        let mut next_free;
        let mut remaining = self.cycle_lengths.clone();
        if self.first_cycle_len >= 2 {
            // the cycle through position 1 first
            let idx = remaining
                .iter()
                .position(|&l| l == self.first_cycle_len)
                .expect("first cycle length must be present");
            remaining.remove(idx);
            let positions: Vec<usize> = (1..=self.first_cycle_len).collect();
            place_cycle(&positions, &mut symbols);
            next_free = self.first_cycle_len + 1;
        } else {
            // position 1 stays fixed
            next_free = 2;
        }
        for l in remaining {
            let positions: Vec<usize> = (next_free..next_free + l).collect();
            place_cycle(&positions, &mut symbols);
            next_free += l;
        }
        Permutation::from_symbols(&symbols).expect("representative is a valid permutation")
    }
}

/// Enumerates every cycle type realisable on `n` symbols together with the
/// number of permutations of that type.  The identity type
/// (`cycle_lengths = []`) is included with count 1.
#[must_use]
pub fn enumerate_types(n: usize) -> Vec<(CycleType, u64)> {
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    // integer partitions of every k <= n into parts >= 2, parts non-increasing
    fn rec(remaining: usize, max_part: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        out.push(current.clone());
        let mut part = max_part.min(remaining);
        while part >= 2 {
            current.push(part);
            rec(remaining - part, part, current, out);
            current.pop();
            part -= 1;
        }
    }
    rec(n, n, &mut Vec::new(), &mut partitions);

    let mut out = Vec::new();
    for parts in partitions {
        let k: usize = parts.iter().sum();
        let mut sorted = parts.clone();
        sorted.sort_unstable();
        if k == 0 {
            out.push((CycleType { cycle_lengths: vec![], first_cycle_len: 1 }, 1));
            continue;
        }
        // variant: position 1 fixed (needs at least one fixed point)
        if k < n {
            let t = CycleType { cycle_lengths: sorted.clone(), first_cycle_len: 1 };
            let c = t.count(n);
            if c > 0 {
                out.push((t, c));
            }
        }
        // variant: position 1 inside a cycle of length l, one per distinct l
        let mut distinct = sorted.clone();
        distinct.dedup();
        for l in distinct {
            let t = CycleType { cycle_lengths: sorted.clone(), first_cycle_len: l };
            let c = t.count(n);
            if c > 0 {
                out.push((t, c));
            }
        }
    }
    out
}

/// Number of star-graph nodes at each distance from a fixed node:
/// `dist[d]` = number of permutations at distance `d`.  Index 0 is the node
/// itself (count 1); the vector length is `diameter + 1`.
#[must_use]
pub fn star_distance_distribution(n: usize) -> Vec<u64> {
    let diameter = 3 * (n - 1) / 2;
    let mut dist = vec![0u64; diameter + 1];
    for (t, count) in enumerate_types(n) {
        dist[t.distance()] += count;
    }
    dist
}

/// Exact mean minimal distance of `S_n` over all ordered pairs of *distinct*
/// nodes — the `d̄` of the paper's Eq. (2).
#[must_use]
pub fn star_mean_distance(n: usize) -> f64 {
    let dist = star_distance_distribution(n);
    let total_nodes: u64 = dist.iter().sum();
    let weighted: u128 = dist.iter().enumerate().map(|(d, &c)| d as u128 * c as u128).sum();
    weighted as f64 / (total_nodes - 1) as f64
}

/// Exact mean minimal distance of the binary hypercube `Q_d` over all ordered
/// pairs of distinct nodes: `d·2^(d-1) / (2^d − 1)`.
#[must_use]
pub fn hypercube_mean_distance(dims: usize) -> f64 {
    let nodes = 1u64 << dims;
    (dims as f64 * (nodes / 2) as f64) / (nodes - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::unrank;

    #[test]
    fn type_counts_sum_to_n_factorial() {
        for n in 2..=9 {
            let total: u64 = enumerate_types(n).iter().map(|(_, c)| c).sum();
            assert_eq!(total, factorial(n), "type counts must cover all of S_{n}");
        }
    }

    #[test]
    fn distribution_matches_enumeration_small_n() {
        for n in 3..=6 {
            let analytic = star_distance_distribution(n);
            let mut direct = vec![0u64; 3 * (n - 1) / 2 + 1];
            for r in 0..factorial(n) {
                direct[unrank(n, r).distance_to_identity()] += 1;
            }
            assert_eq!(analytic, direct, "distance distribution mismatch for S_{n}");
        }
    }

    #[test]
    fn known_distribution_s4() {
        // S4: 24 nodes, diameter 4.
        assert_eq!(star_distance_distribution(4), vec![1, 3, 6, 9, 5]);
    }

    #[test]
    fn mean_distance_known_values() {
        // S3 is a 6-cycle: distances 1,1,2,2,3 → mean 9/5.
        assert!((star_mean_distance(3) - 1.8).abs() < 1e-12);
        // S4: (0·1 + 1·3 + 2·6 + 3·9 + 4·5)/23 = 62/23
        assert!((star_mean_distance(4) - 62.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_is_sublogarithmic_in_nodes() {
        // d̄ grows roughly like n, far below log2(n!) for the same node count.
        for n in 4..=9 {
            let d = star_mean_distance(n);
            assert!(d < n as f64, "mean distance below n for S_{n}");
            assert!(d > (n as f64) / 2.0);
        }
    }

    #[test]
    fn representative_has_claimed_type_and_distance() {
        for n in 4..=7 {
            for (t, _) in enumerate_types(n) {
                let rep = t.representative(n);
                assert_eq!(CycleType::of(&rep), t, "representative type mismatch (n={n})");
                assert_eq!(rep.distance_to_identity(), t.distance());
            }
        }
    }

    #[test]
    fn counts_match_direct_census_s5() {
        use std::collections::HashMap;
        let n = 5;
        let mut census: HashMap<CycleType, u64> = HashMap::new();
        for r in 0..factorial(n) {
            *census.entry(CycleType::of(&unrank(n, r))).or_insert(0) += 1;
        }
        for (t, c) in enumerate_types(n) {
            assert_eq!(census.get(&t).copied().unwrap_or(0), c, "count mismatch for {t:?}");
        }
        assert_eq!(census.len(), enumerate_types(n).len());
    }

    #[test]
    fn hypercube_mean_distance_values() {
        assert!((hypercube_mean_distance(1) - 1.0).abs() < 1e-12);
        assert!((hypercube_mean_distance(2) - 4.0 / 3.0).abs() < 1e-12);
        assert!((hypercube_mean_distance(7) - 7.0 * 64.0 / 127.0).abs() < 1e-12);
    }
}
