//! Bipartite colouring of the star graph and the negative/positive hop
//! classification used by the negative-hop deadlock-avoidance scheme.
//!
//! The star graph is bipartite: every generator is a transposition, so it
//! flips the parity of the permutation.  Following Boppana & Chalasani the
//! two colour classes are labelled `0` and `1`; a hop from a node with a
//! *higher* label to a node with a *lower* label is a **negative** hop, every
//! other hop is **positive**.  A message occupying virtual-channel level `i`
//! has taken exactly `i` negative hops so far.

use crate::permutation::Permutation;
use serde::{Deserialize, Serialize};

/// Colour class of a node in the 2-colouring of the (bipartite) star graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Color {
    /// Even permutations (label 0).
    Zero,
    /// Odd permutations (label 1).
    One,
}

impl Color {
    /// Numeric label of the colour (0 or 1).
    #[must_use]
    pub fn label(self) -> u8 {
        match self {
            Color::Zero => 0,
            Color::One => 1,
        }
    }

    /// The other colour.
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Color::Zero => Color::One,
            Color::One => Color::Zero,
        }
    }

    /// Colour of a node (even permutations are labelled 0).
    #[must_use]
    pub fn of(perm: &Permutation) -> Self {
        if perm.is_even() {
            Color::Zero
        } else {
            Color::One
        }
    }
}

/// Sign of a hop in the negative-hop scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopSign {
    /// Hop from a higher-labelled node to a lower-labelled node.
    Negative,
    /// Hop between nodes where the label does not decrease.
    Positive,
}

impl HopSign {
    /// Classifies the hop `from → to` by colour labels.
    #[must_use]
    pub fn classify(from: Color, to: Color) -> Self {
        if from.label() > to.label() {
            HopSign::Negative
        } else {
            HopSign::Positive
        }
    }

    /// Classifies a hop between two adjacent star-graph nodes.
    #[must_use]
    pub fn of_hop(from: &Permutation, to: &Permutation) -> Self {
        Self::classify(Color::of(from), Color::of(to))
    }

    /// Whether the hop is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        matches!(self, HopSign::Negative)
    }
}

/// Number of negative hops a message starting at a node of colour
/// `source_color` has taken after `hops_taken` hops (hop signs alternate
/// deterministically along any path because colours alternate).
#[must_use]
pub fn negative_hops_after(source_color: Color, hops_taken: usize) -> usize {
    match source_color {
        // 0 → 1 → 0 → …  : hops are +, −, +, − …
        Color::Zero => hops_taken / 2,
        // 1 → 0 → 1 → …  : hops are −, +, −, + …
        Color::One => hops_taken.div_ceil(2),
    }
}

/// Maximum number of negative hops still required by a path of `remaining`
/// hops starting from a node of colour `current_color`.
#[must_use]
pub fn negative_hops_remaining(current_color: Color, remaining: usize) -> usize {
    match current_color {
        Color::Zero => remaining / 2,
        Color::One => remaining.div_ceil(2),
    }
}

/// Maximum number of negative hops any minimal-path message can take in a
/// network of diameter `diameter` coloured with `colors` colours
/// (Boppana & Chalasani: `⌊H·(C−1)/C⌋`).  The star graph uses `C = 2`.
#[must_use]
pub fn max_negative_hops(diameter: usize, colors: usize) -> usize {
    assert!(colors >= 2, "need at least two colours");
    diameter * (colors - 1) / colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutation::Permutation;

    #[test]
    fn identity_is_color_zero() {
        assert_eq!(Color::of(&Permutation::identity(5)), Color::Zero);
    }

    #[test]
    fn neighbours_have_opposite_colors() {
        let v = Permutation::from_symbols(&[3, 1, 4, 2, 5]).unwrap();
        let c = Color::of(&v);
        for dim in 2..=5 {
            assert_eq!(Color::of(&v.apply_generator(dim)), c.flip());
        }
    }

    #[test]
    fn hop_sign_classification() {
        assert_eq!(HopSign::classify(Color::One, Color::Zero), HopSign::Negative);
        assert_eq!(HopSign::classify(Color::Zero, Color::One), HopSign::Positive);
        assert!(HopSign::classify(Color::One, Color::Zero).is_negative());
    }

    #[test]
    fn negative_hop_counting_alternates() {
        assert_eq!(negative_hops_after(Color::Zero, 0), 0);
        assert_eq!(negative_hops_after(Color::Zero, 1), 0);
        assert_eq!(negative_hops_after(Color::Zero, 2), 1);
        assert_eq!(negative_hops_after(Color::Zero, 6), 3);
        assert_eq!(negative_hops_after(Color::One, 1), 1);
        assert_eq!(negative_hops_after(Color::One, 2), 1);
        assert_eq!(negative_hops_after(Color::One, 5), 3);
    }

    #[test]
    fn negative_hops_along_actual_path_match_counter() {
        // Walk a minimal path in S5 and check the per-hop classification sums
        // to the closed-form counter.
        let dest = Permutation::identity(5);
        let mut cur = Permutation::from_symbols(&[5, 4, 3, 2, 1]).unwrap();
        let source_color = Color::of(&cur);
        let mut taken = 0usize;
        let mut neg = 0usize;
        while !cur.relative_to(&dest).is_identity() {
            let rel = cur.relative_to(&dest);
            let dim = rel.profitable_dimensions()[0];
            let next = cur.apply_generator(dim);
            if HopSign::of_hop(&cur, &next).is_negative() {
                neg += 1;
            }
            taken += 1;
            cur = next;
            assert_eq!(neg, negative_hops_after(source_color, taken));
        }
    }

    #[test]
    fn max_negative_hops_star_graph_values() {
        // S5: diameter 6, two colours → 3 negative hops max → 4 VC levels.
        assert_eq!(max_negative_hops(6, 2), 3);
        // S4: diameter 4 → 2.
        assert_eq!(max_negative_hops(4, 2), 2);
        // S6: diameter 7 → 3.
        assert_eq!(max_negative_hops(7, 2), 3);
    }

    #[test]
    fn remaining_negative_hops_bounds() {
        for rem in 0..10 {
            let z = negative_hops_remaining(Color::Zero, rem);
            let o = negative_hops_remaining(Color::One, rem);
            assert!(z <= rem && o <= rem);
            assert_eq!(z + negative_hops_remaining(Color::One, 0), rem / 2);
            assert_eq!(o, rem.div_ceil(2));
        }
    }
}
