//! The [`Topology`] trait: the minimal interface a direct network must expose
//! to the wormhole simulator, the routing algorithms and the analytical model.
//!
//! Nodes are identified by dense *linear addresses* (`NodeId`, `0..node_count`)
//! so per-node state can live in flat vectors.  Routers have `degree()`
//! network ports, numbered `0..degree()`; port `p` of node `u` connects to
//! `neighbor(u, p)`.  Links are bidirectional (two unidirectional channels),
//! matching the channel model of the paper.

use crate::coloring::Color;

/// Dense node identifier (linear address) in `0..node_count()`.
pub type NodeId = u32;

/// A direct interconnection network with minimal-path adaptive routing
/// information.
pub trait Topology: Send + Sync {
    /// Human-readable name, e.g. `"S5"` or `"Q7"`.
    fn name(&self) -> String;

    /// Total number of nodes.
    fn node_count(&self) -> usize;

    /// Router degree: number of network ports per node (excludes the
    /// injection and ejection channels).
    fn degree(&self) -> usize;

    /// Network diameter (maximum minimal distance between any two nodes).
    fn diameter(&self) -> usize;

    /// The neighbour reached from `node` through port `port`
    /// (`port < degree()`).
    fn neighbor(&self, node: NodeId, port: usize) -> NodeId;

    /// Minimal distance (in hops) between two nodes.
    fn distance(&self, a: NodeId, b: NodeId) -> usize;

    /// Ports that lie on *some* minimal path from `current` to `dest`
    /// (the profitable output channels of a fully adaptive minimal router).
    /// Empty iff `current == dest`.
    fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize>;

    /// Colour of a node in a 2-colouring (all topologies in this workspace are
    /// bipartite); used by the negative-hop virtual-channel discipline.
    fn color(&self, node: NodeId) -> Color;

    /// Exact mean minimal distance over all ordered pairs of distinct nodes.
    fn mean_distance(&self) -> f64;

    /// Number of unidirectional network channels (`node_count * degree`).
    fn channel_count(&self) -> usize {
        self.node_count() * self.degree()
    }

    /// Convenience: verify that `a` and `b` are adjacent.
    fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        (0..self.degree()).any(|p| self.neighbor(a, p) == b)
    }
}

#[cfg(test)]
mod tests {
    // The trait itself is exercised through its implementations in
    // `star.rs` and `hypercube.rs`; here we only check object safety.
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn takes_dyn(_t: &dyn Topology) {}
        let s = crate::StarGraph::new(4);
        takes_dyn(&s);
        let q = crate::Hypercube::new(4);
        takes_dyn(&q);
    }
}
