//! The [`Topology`] trait: the minimal interface a direct network must expose
//! to the wormhole simulator, the routing algorithms and the analytical model.
//!
//! Nodes are identified by dense *linear addresses* (`NodeId`, `0..node_count`)
//! so per-node state can live in flat vectors.  Routers have `degree()`
//! network ports, numbered `0..degree()`; port `p` of node `u` connects to
//! `neighbor(u, p)`.  Links are bidirectional (two unidirectional channels),
//! matching the channel model of the paper.

use crate::coloring::Color;

/// Dense node identifier (linear address) in `0..node_count()`.
pub type NodeId = u32;

/// A direct interconnection network with minimal-path adaptive routing
/// information.
///
/// # The spectrum contract
///
/// The analytical model derives every queueing quantity from a *traversal
/// spectrum* built through this trait (a BFS distance census plus per-hop
/// adaptivity profiles from [`Topology::min_route_ports`]).  For the model to
/// be valid on a new topology, the implementation must guarantee:
///
/// * **Minimality.**  `min_route_ports(u, dest)` returns exactly the ports
///   whose neighbour is one hop closer to `dest` (strictly distance
///   decreasing, and *every* such port — the census counts minimal paths by
///   multiplying per-node branch counts).  It is empty iff `u == dest`.
/// * **Bipartiteness.**  [`Topology::color`] is a proper 2-colouring (every
///   link joins the two colour classes).  The negative-hop escape levels —
///   and hence the model's `⌊diameter/2⌋ + 1` virtual-channel minimum — rely
///   on it.
/// * **Vertex transitivity.**  [`Topology::symmetry_classes`] describes the
///   destination census *as seen from node 0*; the model applies it to every
///   source, which is only exact when the network looks the same from every
///   node (true for the star graph, hypercube, torus and ring shipped here).
/// * **Consistency.**  `distance`, `neighbor` and `min_route_ports` agree
///   with each other and with `diameter()`/`mean_distance()` (which must be
///   the exact maximum/mean of `distance(0, ·)` over all nodes).
pub trait Topology: Send + Sync {
    /// Human-readable name, e.g. `"S5"` or `"Q7"`.
    fn name(&self) -> String;

    /// Total number of nodes.
    fn node_count(&self) -> usize;

    /// Router degree: number of network ports per node (excludes the
    /// injection and ejection channels).
    fn degree(&self) -> usize;

    /// Network diameter (maximum minimal distance between any two nodes).
    fn diameter(&self) -> usize;

    /// The neighbour reached from `node` through port `port`
    /// (`port < degree()`).
    fn neighbor(&self, node: NodeId, port: usize) -> NodeId;

    /// The port index at `self.neighbor(node, port)` whose link leads back
    /// to `node` — i.e. `neighbor(neighbor(node, p), reverse_port(node, p))
    /// == node` for every `p < degree()`.  The flit-level simulator routes
    /// credits upstream through this mapping.
    ///
    /// The default returns `port`, which is correct whenever every port's
    /// move is an involution (star transpositions, hypercube bit flips);
    /// ±-step topologies like the torus and ring override it to swap each
    /// `+`/`−` port pair.
    fn reverse_port(&self, node: NodeId, port: usize) -> usize {
        let _ = node;
        port
    }

    /// Minimal distance (in hops) between two nodes.
    fn distance(&self, a: NodeId, b: NodeId) -> usize;

    /// Ports that lie on *some* minimal path from `current` to `dest`
    /// (the profitable output channels of a fully adaptive minimal router).
    /// Empty iff `current == dest`.
    fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize>;

    /// Colour of a node in a 2-colouring (all topologies in this workspace are
    /// bipartite); used by the negative-hop virtual-channel discipline.
    fn color(&self, node: NodeId) -> Color;

    /// Exact mean minimal distance over all ordered pairs of distinct nodes.
    fn mean_distance(&self) -> f64;

    /// Number of unidirectional network channels (`node_count * degree`).
    fn channel_count(&self) -> usize {
        self.node_count() * self.degree()
    }

    /// Convenience: verify that `a` and `b` are adjacent.
    fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        (0..self.degree()).any(|p| self.neighbor(a, p) == b)
    }

    /// The concrete type behind the trait object, so backends can keep
    /// closed-form fast paths for specific topologies (the star and hypercube
    /// spectra have exact combinatorial constructions; everything else goes
    /// through the generic BFS census).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Destination equivalence classes seen from node 0, as
    /// `(representative, multiplicity)` pairs: every destination other than
    /// the source belongs to exactly one class (the multiplicities sum to
    /// `node_count() - 1`), and all members of a class have the same distance
    /// and per-hop adaptivity profile as the representative.
    ///
    /// The default groups nothing (every destination is its own class of
    /// one), which is always correct; override it with the topology's
    /// symmetry classes (permutation cycle types on `S_n`, Hamming weight on
    /// `Q_d`, folded displacement on the torus and ring) to shrink the
    /// generic spectrum construction from `node_count` path DAGs to a
    /// handful.
    fn symmetry_classes(&self) -> Vec<(NodeId, u64)> {
        #[allow(clippy::cast_possible_truncation)]
        (1..self.node_count() as NodeId).map(|d| (d, 1)).collect()
    }
}

#[cfg(test)]
mod tests {
    // The trait itself is exercised through its implementations in
    // `star.rs` and `hypercube.rs`; here we only check object safety.
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn takes_dyn(_t: &dyn Topology) {}
        let s = crate::StarGraph::new(4);
        takes_dyn(&s);
        let q = crate::Hypercube::new(4);
        takes_dyn(&q);
    }
}
