//! Permutations of `{1, …, n}` stored inline, with the cycle-structure
//! queries that the star-graph distance formula and the adaptive routing
//! functions need.
//!
//! A permutation is stored as the sequence of symbols it assigns to the
//! positions `1..=n`, i.e. `perm[pos - 1] = symbol`.  This is exactly the
//! label of a star-graph node in the paper (`v = v1 v2 … vn`).

use crate::MAX_SYMBOLS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A permutation of the symbols `1..=n`, `2 <= n <= MAX_SYMBOLS`.
///
/// The value is the node label used throughout the star-graph literature:
/// position `i` (1-based) holds symbol `self.symbol_at(i)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Permutation {
    /// Number of symbols.
    n: u8,
    /// `symbols[i]` is the symbol at position `i + 1`; entries `>= n` are unused.
    symbols: [u8; MAX_SYMBOLS],
}

/// Summary of the cycle structure of a permutation, the quantity from which
/// the star-graph distance and the set of profitable routing dimensions are
/// computed (Akers & Krishnamurthy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStructure {
    /// Number of displaced symbols (symbols not at their home position).
    pub displaced: usize,
    /// Number of non-trivial cycles (length >= 2).
    pub nontrivial_cycles: usize,
    /// Whether position 1 holds symbol 1.
    pub first_symbol_home: bool,
    /// Length of the cycle containing position 1 (1 if position 1 is a fixed point).
    pub first_cycle_len: usize,
    /// Sorted lengths of all non-trivial cycles (ascending).
    pub cycle_lengths: Vec<usize>,
}

impl Permutation {
    /// The identity permutation `1 2 … n`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `n > MAX_SYMBOLS`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        assert!(
            (2..=MAX_SYMBOLS).contains(&n),
            "permutation size {n} out of range 2..={MAX_SYMBOLS}"
        );
        let mut symbols = [0u8; MAX_SYMBOLS];
        for (i, s) in symbols.iter_mut().enumerate().take(n) {
            *s = (i + 1) as u8;
        }
        Self { n: n as u8, symbols }
    }

    /// Builds a permutation from a slice of symbols (1-based symbols).
    ///
    /// Returns `None` if the slice is not a permutation of `1..=len` or the
    /// length is out of range.
    #[must_use]
    pub fn from_symbols(symbols: &[u8]) -> Option<Self> {
        let n = symbols.len();
        if !(2..=MAX_SYMBOLS).contains(&n) {
            return None;
        }
        let mut seen = [false; MAX_SYMBOLS + 1];
        for &s in symbols {
            if s == 0 || s as usize > n || seen[s as usize] {
                return None;
            }
            seen[s as usize] = true;
        }
        let mut arr = [0u8; MAX_SYMBOLS];
        arr[..n].copy_from_slice(symbols);
        Some(Self { n: n as u8, symbols: arr })
    }

    /// Number of symbols `n`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Always false: permutations of fewer than 2 symbols are not representable.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The symbol at 1-based position `pos`.
    ///
    /// # Panics
    /// Panics if `pos` is 0 or greater than `n`.
    #[inline]
    #[must_use]
    pub fn symbol_at(&self, pos: usize) -> u8 {
        assert!(pos >= 1 && pos <= self.len(), "position {pos} out of range");
        self.symbols[pos - 1]
    }

    /// The symbols as a slice (`slice[i]` = symbol at position `i + 1`).
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.symbols[..self.len()]
    }

    /// The 1-based position currently holding `symbol`.
    ///
    /// # Panics
    /// Panics if `symbol` is not one of `1..=n`.
    #[must_use]
    pub fn position_of(&self, symbol: u8) -> usize {
        assert!(symbol >= 1 && symbol as usize <= self.len(), "symbol {symbol} out of range");
        self.as_slice()
            .iter()
            .position(|&s| s == symbol)
            .map(|i| i + 1)
            .expect("valid permutation always contains every symbol")
    }

    /// Whether this is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.as_slice().iter().enumerate().all(|(i, &s)| s as usize == i + 1)
    }

    /// Applies the star-graph generator of dimension `dim` (`2 <= dim <= n`):
    /// exchanges the symbols at positions 1 and `dim`.
    ///
    /// This is the adjacency relation of the star graph: `p.apply_generator(d)`
    /// is the neighbour of `p` along dimension `d`.
    ///
    /// # Panics
    /// Panics if `dim` is out of `2..=n`.
    #[must_use]
    pub fn apply_generator(&self, dim: usize) -> Self {
        assert!((2..=self.len()).contains(&dim), "dimension {dim} out of range 2..={}", self.len());
        let mut out = *self;
        out.symbols.swap(0, dim - 1);
        out
    }

    /// Function composition `self ∘ other`, i.e. the permutation mapping
    /// position `x` to `self(other(x))` (both viewed as functions
    /// position → symbol).
    ///
    /// # Panics
    /// Panics if the two permutations have different sizes.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "size mismatch in composition");
        let n = self.len();
        let mut arr = [0u8; MAX_SYMBOLS];
        for pos in 1..=n {
            arr[pos - 1] = self.symbol_at(other.symbol_at(pos) as usize);
        }
        Self { n: self.n, symbols: arr }
    }

    /// The inverse permutation (mapping each symbol back to its position).
    #[must_use]
    pub fn inverse(&self) -> Self {
        let n = self.len();
        let mut arr = [0u8; MAX_SYMBOLS];
        for pos in 1..=n {
            arr[self.symbol_at(pos) as usize - 1] = pos as u8;
        }
        Self { n: self.n, symbols: arr }
    }

    /// The permutation of `self` *relative to* `target`: the permutation `r`
    /// such that routing `r` to the identity with star-graph generators is
    /// isomorphic (dimension by dimension) to routing `self` to `target`.
    ///
    /// Concretely `r = target⁻¹ ∘ self`; `r` is the identity iff
    /// `self == target`, and `(self·g).relative_to(target) == r·g` for every
    /// generator `g`.
    #[must_use]
    pub fn relative_to(&self, target: &Self) -> Self {
        target.inverse().compose(self)
    }

    /// Parity of the permutation: `true` for even (product of an even number
    /// of transpositions), `false` for odd.
    ///
    /// The star graph is bipartite with the even and odd permutations as its
    /// two colour classes; a generator always flips parity.
    #[must_use]
    pub fn is_even(&self) -> bool {
        // Count transpositions via cycle structure: a cycle of length L
        // contributes L - 1 transpositions.
        let cs = self.cycle_structure();
        let transpositions: usize = cs.cycle_lengths.iter().map(|l| l - 1).sum();
        transpositions % 2 == 0
    }

    /// Full cycle-structure summary of the permutation.
    #[must_use]
    pub fn cycle_structure(&self) -> CycleStructure {
        let n = self.len();
        let mut visited = [false; MAX_SYMBOLS];
        let mut displaced = 0usize;
        let mut nontrivial_cycles = 0usize;
        let mut first_cycle_len = 1usize;
        let mut cycle_lengths = Vec::new();
        for start in 1..=n {
            if visited[start - 1] {
                continue;
            }
            // walk the cycle containing `start` in the position → symbol map
            let mut len = 0usize;
            let mut pos = start;
            loop {
                visited[pos - 1] = true;
                len += 1;
                pos = self.symbol_at(pos) as usize;
                if pos == start {
                    break;
                }
            }
            if len >= 2 {
                displaced += len;
                nontrivial_cycles += 1;
                cycle_lengths.push(len);
                // does this cycle contain position 1?
                if start == 1 || self.cycle_contains_position_one(start) {
                    first_cycle_len = len;
                }
            }
        }
        cycle_lengths.sort_unstable();
        CycleStructure {
            displaced,
            nontrivial_cycles,
            first_symbol_home: self.symbol_at(1) == 1,
            first_cycle_len,
            cycle_lengths,
        }
    }

    /// Whether the cycle starting at `start` (in the position → symbol map)
    /// passes through position 1.
    fn cycle_contains_position_one(&self, start: usize) -> bool {
        let mut pos = start;
        loop {
            if pos == 1 {
                return true;
            }
            pos = self.symbol_at(pos) as usize;
            if pos == start {
                return false;
            }
        }
    }

    /// Star-graph distance from this permutation to the identity: the minimum
    /// number of generators needed to sort it.
    ///
    /// Formula (Akers, Harel & Krishnamurthy):
    /// `d = k + c` if symbol 1 is at position 1, `d = k + c - 2` otherwise,
    /// where `k` is the number of displaced symbols and `c` the number of
    /// non-trivial cycles (and `d = 0` for the identity).
    #[must_use]
    pub fn distance_to_identity(&self) -> usize {
        if self.is_identity() {
            return 0;
        }
        let cs = self.cycle_structure();
        if cs.first_symbol_home {
            cs.displaced + cs.nontrivial_cycles
        } else {
            cs.displaced + cs.nontrivial_cycles - 2
        }
    }

    /// The set of *profitable* dimensions for minimal routing toward the
    /// identity: every dimension whose generator strictly decreases
    /// [`Self::distance_to_identity`].
    ///
    /// * If the permutation is the identity, the set is empty.
    /// * If symbol 1 is at position 1, every displaced position is profitable.
    /// * Otherwise the profitable moves are (a) sending the first symbol to its
    ///   home position and (b) swapping with any displaced position that lies
    ///   **outside** the cycle through position 1.
    ///
    /// The *number* of profitable dimensions is the adaptivity `f` used by the
    /// analytical model (the number of alternative output channels a fully
    /// adaptive minimal router can offer).
    #[must_use]
    pub fn profitable_dimensions(&self) -> Vec<usize> {
        let n = self.len();
        let mut dims = Vec::new();
        if self.is_identity() {
            return dims;
        }
        let first = self.symbol_at(1);
        if first == 1 {
            for pos in 2..=n {
                if self.symbol_at(pos) as usize != pos {
                    dims.push(pos);
                }
            }
            return dims;
        }
        // Home position of the first symbol is always profitable.
        dims.push(first as usize);
        // Positions displaced and outside the cycle through position 1.
        let in_first_cycle = self.positions_in_cycle_of_one();
        for pos in 2..=n {
            if pos == first as usize {
                continue;
            }
            if self.symbol_at(pos) as usize != pos && !in_first_cycle[pos - 1] {
                dims.push(pos);
            }
        }
        dims.sort_unstable();
        dims
    }

    /// Number of profitable dimensions (the adaptivity `f`).
    #[must_use]
    pub fn adaptivity(&self) -> usize {
        // Cheap closed form derived from the cycle structure, kept in sync with
        // `profitable_dimensions` by tests.
        if self.is_identity() {
            return 0;
        }
        let cs = self.cycle_structure();
        if cs.first_symbol_home {
            cs.displaced
        } else {
            1 + (cs.displaced - cs.first_cycle_len)
        }
    }

    /// Marks, per position (0-based), whether it lies on the cycle through position 1.
    fn positions_in_cycle_of_one(&self) -> [bool; MAX_SYMBOLS] {
        let mut mark = [false; MAX_SYMBOLS];
        let mut pos = 1usize;
        loop {
            mark[pos - 1] = true;
            pos = self.symbol_at(pos) as usize;
            if pos == 1 {
                break;
            }
        }
        mark
    }

    /// A canonical signature of the permutation *type* for caching purposes:
    /// permutations with equal signatures have the same distance, the same
    /// adaptivity profile along their minimal-path DAGs, and the same number
    /// of minimal paths.
    ///
    /// The signature is the multiset of non-trivial cycle lengths together
    /// with the length of the cycle through position 1 (1 when position 1 is
    /// a fixed point).
    #[must_use]
    pub fn type_signature(&self) -> (Vec<usize>, usize) {
        let cs = self.cycle_structure();
        (cs.cycle_lengths, if cs.first_symbol_home { 1 } else { cs.first_cycle_len })
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation(")?;
        for (i, s) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.as_slice() {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sym: &[u8]) -> Permutation {
        Permutation::from_symbols(sym).expect("valid permutation")
    }

    #[test]
    fn identity_is_identity() {
        for n in 2..=8 {
            let id = Permutation::identity(n);
            assert!(id.is_identity());
            assert_eq!(id.distance_to_identity(), 0);
            assert!(id.profitable_dimensions().is_empty());
            assert_eq!(id.adaptivity(), 0);
            assert!(id.is_even());
        }
    }

    #[test]
    fn from_symbols_rejects_invalid() {
        assert!(Permutation::from_symbols(&[1, 1, 3]).is_none());
        assert!(Permutation::from_symbols(&[0, 2]).is_none());
        assert!(Permutation::from_symbols(&[1, 2, 4]).is_none());
        assert!(Permutation::from_symbols(&[1]).is_none());
        assert!(Permutation::from_symbols(&[2, 1]).is_some());
    }

    #[test]
    fn generator_is_involution_and_flips_parity() {
        let v = p(&[3, 1, 4, 2, 5]);
        for dim in 2..=5 {
            let w = v.apply_generator(dim);
            assert_ne!(w, v);
            assert_eq!(w.apply_generator(dim), v);
            assert_ne!(w.is_even(), v.is_even());
        }
    }

    #[test]
    fn compose_and_inverse() {
        let a = p(&[2, 3, 1, 5, 4]);
        let b = p(&[3, 1, 2, 4, 5]);
        let ab = a.compose(&b);
        // (a∘b)(x) = a(b(x))
        for pos in 1..=5 {
            assert_eq!(ab.symbol_at(pos), a.symbol_at(b.symbol_at(pos) as usize));
        }
        let id = Permutation::identity(5);
        assert_eq!(a.compose(&a.inverse()), id);
        assert_eq!(a.inverse().compose(&a), id);
    }

    #[test]
    fn relative_to_tracks_generators() {
        let u = p(&[4, 2, 1, 3]);
        let w = p(&[2, 3, 4, 1]);
        let r = u.relative_to(&w);
        assert_eq!(u.relative_to(&u), Permutation::identity(4));
        for dim in 2..=4 {
            let u2 = u.apply_generator(dim);
            assert_eq!(u2.relative_to(&w), r.apply_generator(dim));
        }
    }

    #[test]
    fn known_distances_small() {
        // Worked examples from the literature / hand calculation.
        assert_eq!(p(&[2, 1]).distance_to_identity(), 1);
        assert_eq!(p(&[2, 1, 3]).distance_to_identity(), 1);
        assert_eq!(p(&[3, 2, 1]).distance_to_identity(), 1);
        assert_eq!(p(&[2, 3, 1]).distance_to_identity(), 2);
        assert_eq!(p(&[3, 1, 2]).distance_to_identity(), 2);
        assert_eq!(p(&[1, 3, 2]).distance_to_identity(), 3);
        assert_eq!(p(&[2, 1, 4, 3]).distance_to_identity(), 4);
        assert_eq!(p(&[2, 3, 4, 1]).distance_to_identity(), 3);
    }

    #[test]
    fn distance_matches_bfs_on_s4_and_s5() {
        use std::collections::{HashMap, VecDeque};
        for n in [4usize, 5] {
            let id = Permutation::identity(n);
            let mut dist: HashMap<Permutation, usize> = HashMap::new();
            dist.insert(id, 0);
            let mut q = VecDeque::new();
            q.push_back(id);
            while let Some(v) = q.pop_front() {
                let d = dist[&v];
                for dim in 2..=n {
                    let w = v.apply_generator(dim);
                    dist.entry(w).or_insert_with(|| {
                        q.push_back(w);
                        d + 1
                    });
                }
            }
            assert_eq!(dist.len(), crate::factorial(n) as usize);
            for (v, d) in dist {
                assert_eq!(
                    v.distance_to_identity(),
                    d,
                    "distance formula disagrees with BFS for {v:?}"
                );
            }
        }
    }

    #[test]
    fn profitable_dimensions_reduce_distance_by_one() {
        // exhaustive over S5
        let n = 5;
        let mut stack = vec![Permutation::identity(n)];
        let mut seen = std::collections::HashSet::new();
        seen.insert(stack[0]);
        while let Some(v) = stack.pop() {
            let d = v.distance_to_identity();
            let profitable = v.profitable_dimensions();
            assert_eq!(profitable.len(), v.adaptivity());
            for dim in 2..=n {
                let w = v.apply_generator(dim);
                let dw = w.distance_to_identity();
                if profitable.contains(&dim) {
                    assert_eq!(dw, d - 1, "profitable move must reduce distance ({v:?} dim {dim})");
                } else {
                    assert!(
                        dw >= d,
                        "non-profitable move must not reduce distance ({v:?} dim {dim})"
                    );
                }
                if seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        assert_eq!(seen.len(), 120);
    }

    #[test]
    fn adaptivity_worked_examples() {
        assert_eq!(p(&[2, 1, 4, 3]).adaptivity(), 3);
        assert_eq!(p(&[1, 3, 2]).adaptivity(), 2);
        assert_eq!(p(&[2, 3, 4, 1]).adaptivity(), 1);
        assert_eq!(p(&[2, 1]).adaptivity(), 1);
    }

    #[test]
    fn parity_matches_transposition_count() {
        assert!(Permutation::identity(6).is_even());
        assert!(!p(&[2, 1, 3, 4]).is_even());
        assert!(p(&[2, 1, 4, 3]).is_even());
        assert!(p(&[2, 3, 1]).is_even());
    }

    #[test]
    fn display_and_debug() {
        let v = p(&[3, 1, 2]);
        assert_eq!(format!("{v}"), "312");
        assert_eq!(format!("{v:?}"), "Permutation(3 1 2)");
    }

    #[test]
    fn type_signature_groups_equivalent_nodes() {
        // 2143 and 3412 both consist of two 2-cycles with position 1 displaced.
        let a = p(&[2, 1, 4, 3]).type_signature();
        let b = p(&[3, 4, 1, 2]).type_signature();
        assert_eq!(a, b);
        // but 1324 (position 1 fixed) differs
        let c = p(&[1, 3, 2, 4]).type_signature();
        assert_ne!(a, c);
    }
}
