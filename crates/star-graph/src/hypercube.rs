//! The binary hypercube `Q_d` as a [`Topology`].
//!
//! The paper positions the star graph as "an attractive alternative to the
//! well-known hypercube" and names a star-vs-hypercube comparison as future
//! work; the workspace therefore ships a hypercube substrate so that the
//! simulator and the benchmark harness can run both topologies side by side.

use crate::coloring::Color;
use crate::distance::hypercube_mean_distance;
use crate::topology::{NodeId, Topology};

/// The binary hypercube `Q_d` with `2^d` nodes and degree `d`.
#[derive(Debug, Clone)]
pub struct Hypercube {
    dims: usize,
}

impl Hypercube {
    /// Largest supported dimension (`2^24` nodes is already far beyond what
    /// the flit-level simulator is meant for).
    pub const MAX_DIMS: usize = 24;

    /// Builds `Q_d`.
    ///
    /// # Panics
    /// Panics if `dims` is 0 or greater than [`Self::MAX_DIMS`].
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(
            (1..=Self::MAX_DIMS).contains(&dims),
            "hypercube dimension {dims} out of range 1..={}",
            Self::MAX_DIMS
        );
        Self { dims }
    }

    /// The dimension `d`.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The smallest hypercube with at least `nodes` nodes — used to pick an
    /// "equivalent" hypercube when comparing against `S_n` (e.g. `Q7` with 128
    /// nodes against `S5` with 120 nodes).
    #[must_use]
    pub fn at_least(nodes: usize) -> Self {
        let mut dims = 1usize;
        while (1usize << dims) < nodes {
            dims += 1;
        }
        Self::new(dims)
    }
}

impl Topology for Hypercube {
    fn name(&self) -> String {
        format!("Q{}", self.dims)
    }

    fn node_count(&self) -> usize {
        1usize << self.dims
    }

    fn degree(&self) -> usize {
        self.dims
    }

    fn diameter(&self) -> usize {
        self.dims
    }

    fn neighbor(&self, node: NodeId, port: usize) -> NodeId {
        debug_assert!(port < self.dims);
        node ^ (1 << port)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (a ^ b).count_ones() as usize
    }

    fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize> {
        let diff = current ^ dest;
        (0..self.dims).filter(|&p| diff & (1 << p) != 0).collect()
    }

    fn color(&self, node: NodeId) -> Color {
        if node.count_ones() % 2 == 0 {
            Color::Zero
        } else {
            Color::One
        }
    }

    fn mean_distance(&self) -> f64 {
        hypercube_mean_distance(self.dims)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn symmetry_classes(&self) -> Vec<(NodeId, u64)> {
        // destinations seen from node 0 are classified by Hamming weight:
        // the lowest h bits set represent the C(d, h) nodes at distance h
        (1..=self.dims)
            .map(|h| {
                let count = (1..=h as u64).fold(1u64, |acc, i| {
                    acc * (self.dims as u64 - i + 1) / i // binomial, exact at every step
                });
                ((1u64 << h) as NodeId - 1, count)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parameters() {
        let q7 = Hypercube::new(7);
        assert_eq!(q7.name(), "Q7");
        assert_eq!(q7.node_count(), 128);
        assert_eq!(q7.degree(), 7);
        assert_eq!(q7.diameter(), 7);
        assert_eq!(q7.channel_count(), 896);
    }

    #[test]
    fn at_least_matches_star_sizes() {
        assert_eq!(Hypercube::at_least(120).dims(), 7); // S5 → Q7
        assert_eq!(Hypercube::at_least(24).dims(), 5); // S4 → Q5
        assert_eq!(Hypercube::at_least(720).dims(), 10); // S6 → Q10
        assert_eq!(Hypercube::at_least(2).dims(), 1);
    }

    #[test]
    fn neighbors_are_involutive_and_distinct() {
        let q = Hypercube::new(5);
        for node in 0..q.node_count() as NodeId {
            let mut seen = std::collections::HashSet::new();
            for port in 0..q.degree() {
                let nb = q.neighbor(node, port);
                assert_ne!(nb, node);
                assert!(seen.insert(nb));
                assert_eq!(q.neighbor(nb, port), node);
            }
        }
    }

    #[test]
    fn distance_and_min_route_ports_agree() {
        let q = Hypercube::new(6);
        let dest: NodeId = 0b101010;
        for node in 0..q.node_count() as NodeId {
            let d = q.distance(node, dest);
            let ports = q.min_route_ports(node, dest);
            assert_eq!(ports.len(), d, "adaptivity of the hypercube equals the Hamming distance");
            for p in ports {
                assert_eq!(q.distance(q.neighbor(node, p), dest), d - 1);
            }
        }
    }

    #[test]
    fn coloring_is_proper() {
        let q = Hypercube::new(4);
        for node in 0..q.node_count() as NodeId {
            for port in 0..q.degree() {
                assert_ne!(q.color(node), q.color(q.neighbor(node, port)));
            }
        }
    }

    #[test]
    fn mean_distance_matches_direct_average() {
        let q = Hypercube::new(6);
        let total: usize = (1..q.node_count() as NodeId).map(|v| q.distance(0, v)).sum();
        let direct = total as f64 / (q.node_count() - 1) as f64;
        assert!((q.mean_distance() - direct).abs() < 1e-12);
    }
}
