//! The `k`-ary 2-cube (2-D torus) and the ring as [`Topology`] backends.
//!
//! The paper compares the star graph against the hypercube only; these two
//! k-ary cube relatives exercise the *generic* traversal-spectrum path of the
//! analytical model — there is no closed-form spectrum for them in the
//! workspace, so every queueing quantity is derived through the
//! [`Topology`] trait alone.
//!
//! Both topologies restrict `k` to **even** values `>= 4`: odd cycles are not
//! bipartite, and the negative-hop escape discipline (and with it the model's
//! virtual-channel floor) requires a proper 2-colouring.  Even `k` also
//! maximises adaptivity: a displacement of exactly `k/2` along an axis can be
//! resolved in either direction, which is precisely the multi-path richness
//! the adaptive model is about.
//!
//! Minimal-path counts on the torus grow as binomials of the total distance;
//! the generic census accumulates them in `u128`, which overflows around
//! `C(132, 66)`.  Keep `k` at or below 128 when building model spectra (the
//! parity figures use `k <= 20`).

use crate::coloring::Color;
use crate::topology::{NodeId, Topology};

/// The `k`-ary 2-cube: a `k x k` grid with wraparound links in both axes.
///
/// Node `(x, y)` has linear address `x * k + y`.  Ports: `0 = +x`, `1 = -x`,
/// `2 = +y`, `3 = -y` (all arithmetic modulo `k`), so the degree is 4
/// independent of `k`.
#[derive(Debug, Clone)]
pub struct Torus {
    k: usize,
}

/// The cycle `C_k` (1-D torus): `k` nodes, degree 2.
///
/// Ports: `0 = +1`, `1 = -1` modulo `k`.
#[derive(Debug, Clone)]
pub struct Ring {
    k: usize,
}

/// Ports on a minimal path along one axis of a cycle of length `k`, given the
/// forward displacement `d = (dest - current) mod k` and the (plus, minus)
/// port numbers for that axis.  Both directions are minimal when `d == k/2`.
fn axis_ports(d: usize, k: usize, plus: usize, minus: usize, out: &mut Vec<usize>) {
    if d == 0 {
        return;
    }
    if 2 * d <= k {
        out.push(plus);
    }
    if 2 * d >= k {
        out.push(minus);
    }
}

/// Shortest way around a cycle of length `k` for forward displacement `d`.
fn axis_distance(d: usize, k: usize) -> usize {
    d.min(k - d)
}

/// Number of nodes of `C_k` at folded displacement `c` from a fixed node
/// (`0 < c <= k/2`): 2 on both sides, except the antipode which is unique.
fn axis_multiplicity(c: usize, k: usize) -> u64 {
    if c == 0 || 2 * c == k {
        1
    } else {
        2
    }
}

impl Torus {
    /// Builds the `k`-ary 2-cube.
    ///
    /// # Panics
    /// Panics if `k` is odd or smaller than 4 (odd cycles are not bipartite,
    /// and `k < 4` degenerates into multi-edges).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 4 && k % 2 == 0, "torus side {k} must be even and at least 4");
        Self { k }
    }

    /// The side length `k` (so the network has `k^2` nodes).
    #[must_use]
    pub fn side(&self) -> usize {
        self.k
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        let node = node as usize;
        (node / self.k, node % self.k)
    }

    #[allow(clippy::cast_possible_truncation)]
    fn node_at(&self, x: usize, y: usize) -> NodeId {
        (x * self.k + y) as NodeId
    }
}

impl Topology for Torus {
    fn name(&self) -> String {
        format!("T{}", self.k)
    }

    fn node_count(&self) -> usize {
        self.k * self.k
    }

    fn degree(&self) -> usize {
        4
    }

    fn diameter(&self) -> usize {
        self.k // k/2 per axis, twice
    }

    fn neighbor(&self, node: NodeId, port: usize) -> NodeId {
        let (x, y) = self.coords(node);
        let k = self.k;
        match port {
            0 => self.node_at((x + 1) % k, y),
            1 => self.node_at((x + k - 1) % k, y),
            2 => self.node_at(x, (y + 1) % k),
            3 => self.node_at(x, (y + k - 1) % k),
            _ => panic!("torus port {port} out of range 0..4"),
        }
    }

    fn reverse_port(&self, _node: NodeId, port: usize) -> usize {
        // each axis pairs a `+` port with its `−` port: 0↔1, 2↔3
        port ^ 1
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let k = self.k;
        axis_distance((bx + k - ax) % k, k) + axis_distance((by + k - ay) % k, k)
    }

    fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize> {
        let (ax, ay) = self.coords(current);
        let (bx, by) = self.coords(dest);
        let k = self.k;
        let mut ports = Vec::with_capacity(4);
        axis_ports((bx + k - ax) % k, k, 0, 1, &mut ports);
        axis_ports((by + k - ay) % k, k, 2, 3, &mut ports);
        ports
    }

    fn color(&self, node: NodeId) -> Color {
        let (x, y) = self.coords(node);
        if (x + y) % 2 == 0 {
            Color::Zero
        } else {
            Color::One
        }
    }

    fn mean_distance(&self) -> f64 {
        // per axis the distances from a fixed coordinate sum to k^2/4, and
        // each axis sum is seen k times (once per value of the other axis)
        let k = self.k as f64;
        (k * k * k / 2.0) / (k * k - 1.0)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn symmetry_classes(&self) -> Vec<(NodeId, u64)> {
        // destinations seen from (0, 0) are classified by the pair of folded
        // displacements (cx, cy) in [0, k/2]^2 minus the source itself
        let half = self.k / 2;
        let mut classes = Vec::with_capacity((half + 1) * (half + 1) - 1);
        for cx in 0..=half {
            for cy in 0..=half {
                if cx == 0 && cy == 0 {
                    continue;
                }
                let count = axis_multiplicity(cx, self.k) * axis_multiplicity(cy, self.k);
                classes.push((self.node_at(cx, cy), count));
            }
        }
        classes
    }
}

impl Ring {
    /// Builds the cycle `C_k`.
    ///
    /// # Panics
    /// Panics if `k` is odd or smaller than 4.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 4 && k % 2 == 0, "ring size {k} must be even and at least 4");
        Self { k }
    }

    /// The number of nodes `k`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.k
    }
}

impl Topology for Ring {
    fn name(&self) -> String {
        format!("R{}", self.k)
    }

    fn node_count(&self) -> usize {
        self.k
    }

    fn degree(&self) -> usize {
        2
    }

    fn diameter(&self) -> usize {
        self.k / 2
    }

    #[allow(clippy::cast_possible_truncation)]
    fn neighbor(&self, node: NodeId, port: usize) -> NodeId {
        let node = node as usize;
        let k = self.k;
        match port {
            0 => ((node + 1) % k) as NodeId,
            1 => ((node + k - 1) % k) as NodeId,
            _ => panic!("ring port {port} out of range 0..2"),
        }
    }

    fn reverse_port(&self, _node: NodeId, port: usize) -> usize {
        port ^ 1
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let k = self.k;
        axis_distance((b as usize + k - a as usize) % k, k)
    }

    fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize> {
        let k = self.k;
        let mut ports = Vec::with_capacity(2);
        axis_ports((dest as usize + k - current as usize) % k, k, 0, 1, &mut ports);
        ports
    }

    fn color(&self, node: NodeId) -> Color {
        if node % 2 == 0 {
            Color::Zero
        } else {
            Color::One
        }
    }

    fn mean_distance(&self) -> f64 {
        let k = self.k as f64;
        (k * k / 4.0) / (k - 1.0)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    #[allow(clippy::cast_possible_truncation)]
    fn symmetry_classes(&self) -> Vec<(NodeId, u64)> {
        (1..=self.k / 2).map(|c| (c as NodeId, axis_multiplicity(c, self.k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn bfs_distances(t: &dyn Topology, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; t.node_count()];
        dist[src as usize] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for port in 0..t.degree() {
                let v = t.neighbor(u, port);
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    fn contract_suite(t: &dyn Topology) {
        let count = t.node_count();
        // neighbours: distinct, no self-loops, symmetric adjacency
        for node in 0..count as NodeId {
            let mut seen = std::collections::HashSet::new();
            for port in 0..t.degree() {
                let nb = t.neighbor(node, port);
                assert_ne!(nb, node, "{}: no self loops", t.name());
                assert!(seen.insert(nb), "{}: neighbours must be distinct", t.name());
                assert!(t.are_adjacent(nb, node), "{}: adjacency must be symmetric", t.name());
                assert_eq!(
                    t.neighbor(nb, t.reverse_port(node, port)),
                    node,
                    "{}: reverse_port must invert the link",
                    t.name()
                );
            }
        }
        // distance agrees with BFS from a few sources (vertex-transitive, but
        // check more than node 0 to catch coordinate bugs)
        for src in [0, (count / 3) as NodeId, (count - 1) as NodeId] {
            let dist = bfs_distances(t, src);
            for dst in 0..count as NodeId {
                assert_eq!(
                    t.distance(src, dst),
                    dist[dst as usize],
                    "{}: distance({src}, {dst})",
                    t.name()
                );
            }
        }
        // min_route_ports: exactly the distance-decreasing ports
        let dest = (count / 2) as NodeId;
        for node in 0..count as NodeId {
            let d = t.distance(node, dest);
            let ports = t.min_route_ports(node, dest);
            if node == dest {
                assert!(ports.is_empty());
                continue;
            }
            assert!(!ports.is_empty());
            for p in 0..t.degree() {
                let nd = t.distance(t.neighbor(node, p), dest);
                if ports.contains(&p) {
                    assert_eq!(nd, d - 1, "{}: port {p} must be profitable", t.name());
                } else {
                    assert!(nd >= d, "{}: port {p} wrongly omitted", t.name());
                }
            }
        }
        // diameter achieved, mean distance exact
        let dist0 = bfs_distances(t, 0);
        assert_eq!(*dist0.iter().max().unwrap(), t.diameter(), "{}: diameter", t.name());
        let direct = dist0.iter().sum::<usize>() as f64 / (count - 1) as f64;
        assert!((t.mean_distance() - direct).abs() < 1e-12, "{}: mean distance", t.name());
        // proper balanced 2-colouring
        let zeros = (0..count as NodeId).filter(|&v| t.color(v) == Color::Zero).count();
        assert_eq!(zeros, count / 2, "{}: colour classes balanced", t.name());
        for node in 0..count as NodeId {
            for port in 0..t.degree() {
                assert_ne!(t.color(node), t.color(t.neighbor(node, port)), "{}", t.name());
            }
        }
        // symmetry classes: multiplicities cover all destinations, and every
        // representative sits at the class distance from node 0
        let classes = t.symmetry_classes();
        let total: u64 = classes.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, (count - 1) as u64, "{}: class multiplicities", t.name());
        let mut per_distance = vec![0u64; t.diameter() + 1];
        for &(rep, c) in &classes {
            per_distance[t.distance(0, rep)] += c;
        }
        for (d, &want) in per_distance.iter().enumerate() {
            let have = dist0.iter().filter(|&&x| x == d).count() as u64;
            let have = if d == 0 { have - 1 } else { have }; // exclude the source
            assert_eq!(want, have, "{}: distance census at d={d}", t.name());
        }
    }

    #[test]
    fn torus_basic_parameters() {
        let t = Torus::new(6);
        assert_eq!(t.name(), "T6");
        assert_eq!(t.node_count(), 36);
        assert_eq!(t.degree(), 4);
        assert_eq!(t.diameter(), 6);
        assert_eq!(t.channel_count(), 144);
        assert_eq!(t.side(), 6);
    }

    #[test]
    fn ring_basic_parameters() {
        let r = Ring::new(8);
        assert_eq!(r.name(), "R8");
        assert_eq!(r.node_count(), 8);
        assert_eq!(r.degree(), 2);
        assert_eq!(r.diameter(), 4);
        assert_eq!(r.size(), 8);
    }

    #[test]
    fn torus_satisfies_topology_contract() {
        contract_suite(&Torus::new(4));
        contract_suite(&Torus::new(6));
        contract_suite(&Torus::new(8));
    }

    #[test]
    fn ring_satisfies_topology_contract() {
        contract_suite(&Ring::new(4));
        contract_suite(&Ring::new(6));
        contract_suite(&Ring::new(10));
    }

    #[test]
    fn torus_antipodal_displacement_is_fully_adaptive() {
        // from (0,0) to (k/2, k/2) every one of the 4 ports is profitable
        let t = Torus::new(6);
        let dest = t.node_at(3, 3);
        assert_eq!(t.min_route_ports(0, dest), vec![0, 1, 2, 3]);
        // a plain forward displacement keeps a single profitable axis port
        assert_eq!(t.min_route_ports(0, t.node_at(1, 0)), vec![0]);
    }

    #[test]
    fn ring_antipode_allows_both_directions() {
        let r = Ring::new(8);
        assert_eq!(r.min_route_ports(0, 4), vec![0, 1]);
        assert_eq!(r.min_route_ports(0, 3), vec![0]);
        assert_eq!(r.min_route_ports(0, 5), vec![1]);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_torus_rejected() {
        let _ = Torus::new(5);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_ring_rejected() {
        let _ = Ring::new(2);
    }
}
