//! Lexicographic ranking and unranking of permutations.
//!
//! Every node of `S_n` gets a dense *linear address* in `0..n!` so that the
//! simulator and the analytical model can index per-node state with plain
//! vectors.  Rank 0 is the identity permutation, matching the paper's choice
//! of the identity as the reference source node.

use crate::permutation::Permutation;
use crate::{factorial, MAX_SYMBOLS};

/// Lexicographic rank of a permutation among all permutations of the same
/// size, in `0..n!`.  The identity has rank 0.
#[must_use]
pub fn rank(perm: &Permutation) -> u64 {
    let n = perm.len();
    let mut rank = 0u64;
    // `used[s]` marks symbols already consumed by earlier positions.
    let mut used = [false; MAX_SYMBOLS + 1];
    for pos in 1..=n {
        let s = perm.symbol_at(pos) as usize;
        // number of unused symbols smaller than s
        let smaller = (1..s).filter(|&t| !used[t]).count() as u64;
        rank += smaller * factorial(n - pos);
        used[s] = true;
    }
    rank
}

/// Inverse of [`rank`]: the permutation of `n` symbols with the given
/// lexicographic rank.
///
/// # Panics
/// Panics if `r >= n!` or `n` is out of the supported range.
#[must_use]
pub fn unrank(n: usize, r: u64) -> Permutation {
    assert!((2..=MAX_SYMBOLS).contains(&n), "size {n} out of range");
    assert!(r < factorial(n), "rank {r} out of range for n = {n}");
    let mut remaining: Vec<u8> = (1..=n as u8).collect();
    let mut symbols = Vec::with_capacity(n);
    let mut r = r;
    for pos in 1..=n {
        let f = factorial(n - pos);
        let idx = (r / f) as usize;
        r %= f;
        symbols.push(remaining.remove(idx));
    }
    Permutation::from_symbols(&symbols).expect("unrank constructs a valid permutation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_rank_zero() {
        for n in 2..=9 {
            assert_eq!(rank(&Permutation::identity(n)), 0);
            assert_eq!(unrank(n, 0), Permutation::identity(n));
        }
    }

    #[test]
    fn last_rank_is_reversed_permutation() {
        let n = 5;
        let last = unrank(n, factorial(n) - 1);
        assert_eq!(last.as_slice(), &[5, 4, 3, 2, 1]);
    }

    #[test]
    fn rank_unrank_roundtrip_s5() {
        let n = 5;
        for r in 0..factorial(n) {
            let p = unrank(n, r);
            assert_eq!(rank(&p), r);
        }
    }

    #[test]
    fn rank_is_lexicographic_order() {
        let n = 4;
        let mut perms: Vec<_> = (0..factorial(n)).map(|r| unrank(n, r)).collect();
        let sorted = {
            let mut s = perms.clone();
            s.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
            s
        };
        perms.sort_by_key(rank);
        assert_eq!(perms, sorted);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_rejects_out_of_range() {
        let _ = unrank(4, 24);
    }

    mod prop {
        use super::*;

        /// Deterministic stand-in for the former proptest strategy: a strided
        /// sweep through `0..n!` that always includes both endpoints.
        fn sampled_ranks(n: usize) -> impl Iterator<Item = u64> {
            let total = factorial(n);
            let step = (total / 97).max(1);
            (0..total).step_by(step as usize).chain([total - 1])
        }

        #[test]
        fn roundtrip_random() {
            for n in 2usize..=8 {
                for r in sampled_ranks(n) {
                    let p = unrank(n, r);
                    assert_eq!(rank(&p), r, "rank/unrank roundtrip failed for n={n}, r={r}");
                }
            }
        }

        #[test]
        fn neighbours_have_distinct_ranks() {
            for n in 3usize..=7 {
                for r in sampled_ranks(n) {
                    let p = unrank(n, r);
                    for dim in 2..=n {
                        let q = p.apply_generator(dim);
                        assert_ne!(rank(&q), r, "generator {dim} fixed rank {r} for n={n}");
                    }
                }
            }
        }
    }
}
