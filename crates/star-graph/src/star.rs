//! The star graph `S_n` as a [`Topology`].
//!
//! `S_n` has `n!` nodes, one per permutation of `{1..n}`; node `v` is adjacent
//! to the `n - 1` permutations obtained by exchanging the first symbol of `v`
//! with its *i*-th symbol (`2 <= i <= n`).  Port `p` (0-based) of a router
//! corresponds to dimension `p + 2`.
//!
//! The constructor precomputes the rank ↔ permutation tables and the
//! neighbour table so that the simulator's hot path is a table lookup.

use crate::coloring::Color;
use crate::distance;
use crate::factorial;
use crate::permutation::Permutation;
use crate::rank::{rank, unrank};
use crate::topology::{NodeId, Topology};

/// The star interconnection network `S_n`.
#[derive(Debug, Clone)]
pub struct StarGraph {
    n: usize,
    /// Permutation label of every linear address.
    perms: Vec<Permutation>,
    /// `neighbors[node][port]` = node reached through dimension `port + 2`.
    neighbors: Vec<Vec<NodeId>>,
    /// Colour (parity) of every node.
    colors: Vec<Color>,
    diameter: usize,
    mean_distance: f64,
}

impl StarGraph {
    /// Largest `n` for which the full node tables are precomputed
    /// (`9! = 362_880` nodes).
    pub const MAX_TABLED_SYMBOLS: usize = 9;

    /// Builds `S_n` with full node/neighbour tables.
    ///
    /// # Panics
    /// Panics if `n < 2` or `n > MAX_TABLED_SYMBOLS`; larger star graphs
    /// should be studied through the analytical model (which enumerates node
    /// *types*, not nodes — see `star-core`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            (2..=Self::MAX_TABLED_SYMBOLS).contains(&n),
            "S_{n} is not supported by the tabled topology (2..={})",
            Self::MAX_TABLED_SYMBOLS
        );
        let count = factorial(n) as usize;
        let mut perms = Vec::with_capacity(count);
        let mut colors = Vec::with_capacity(count);
        for r in 0..count as u64 {
            let p = unrank(n, r);
            colors.push(Color::of(&p));
            perms.push(p);
        }
        let mut neighbors = Vec::with_capacity(count);
        for p in &perms {
            let mut row = Vec::with_capacity(n - 1);
            for dim in 2..=n {
                row.push(rank(&p.apply_generator(dim)) as NodeId);
            }
            neighbors.push(row);
        }
        let diameter = 3 * (n - 1) / 2;
        let mean_distance = distance::star_mean_distance(n);
        Self { n, perms, neighbors, colors, diameter, mean_distance }
    }

    /// Number of symbols `n` (so the network has `n!` nodes and degree `n-1`).
    #[must_use]
    pub fn symbols(&self) -> usize {
        self.n
    }

    /// Permutation label of a node.
    ///
    /// # Panics
    /// Panics if the node id is out of range.
    #[must_use]
    pub fn permutation(&self, node: NodeId) -> &Permutation {
        &self.perms[node as usize]
    }

    /// Linear address of a permutation.
    #[must_use]
    pub fn node_of(&self, perm: &Permutation) -> NodeId {
        debug_assert_eq!(perm.len(), self.n);
        rank(perm) as NodeId
    }

    /// The dimension (`2..=n`) corresponding to a router port (`0..n-1`).
    #[must_use]
    pub fn port_to_dimension(&self, port: usize) -> usize {
        assert!(port < self.n - 1, "port {port} out of range");
        port + 2
    }

    /// The router port (`0..n-1`) corresponding to a dimension (`2..=n`).
    #[must_use]
    pub fn dimension_to_port(&self, dim: usize) -> usize {
        assert!((2..=self.n).contains(&dim), "dimension {dim} out of range");
        dim - 2
    }

    /// Number of virtual-channel *levels* the negative-hop scheme needs on
    /// this network: `⌊H/2⌋ + 1` where `H` is the diameter (the star graph is
    /// 2-colourable).
    #[must_use]
    pub fn negative_hop_levels(&self) -> usize {
        crate::coloring::max_negative_hops(self.diameter, 2) + 1
    }
}

impl Topology for StarGraph {
    fn name(&self) -> String {
        format!("S{}", self.n)
    }

    fn node_count(&self) -> usize {
        self.perms.len()
    }

    fn degree(&self) -> usize {
        self.n - 1
    }

    fn diameter(&self) -> usize {
        self.diameter
    }

    fn neighbor(&self, node: NodeId, port: usize) -> NodeId {
        self.neighbors[node as usize][port]
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.perms[a as usize].relative_to(&self.perms[b as usize]).distance_to_identity()
    }

    fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize> {
        let rel = self.perms[current as usize].relative_to(&self.perms[dest as usize]);
        rel.profitable_dimensions().into_iter().map(|dim| self.dimension_to_port(dim)).collect()
    }

    fn color(&self, node: NodeId) -> Color {
        self.colors[node as usize]
    }

    fn mean_distance(&self) -> f64 {
        self.mean_distance
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn symmetry_classes(&self) -> Vec<(NodeId, u64)> {
        // destinations seen from the identity fall into permutation
        // cycle-type classes; the *inverse* of the canonical representative
        // is used so that the relative permutation seen when routing node 0
        // to the class node (identity.relative_to(rep) = rep⁻¹) is exactly
        // the canonical representative — the same permutation the closed-form
        // spectrum builds its path DAG from
        distance::enumerate_types(self.n)
            .into_iter()
            .filter(|(t, _)| !t.cycle_lengths.is_empty()) // skip the source itself
            .map(|(t, count)| (self.node_of(&t.representative(self.n).inverse()), count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parameters() {
        let s4 = StarGraph::new(4);
        assert_eq!(s4.name(), "S4");
        assert_eq!(s4.node_count(), 24);
        assert_eq!(s4.degree(), 3);
        assert_eq!(s4.diameter(), 4);
        assert_eq!(s4.channel_count(), 72);
        assert_eq!(s4.negative_hop_levels(), 3);

        let s5 = StarGraph::new(5);
        assert_eq!(s5.node_count(), 120);
        assert_eq!(s5.degree(), 4);
        assert_eq!(s5.diameter(), 6);
        assert_eq!(s5.negative_hop_levels(), 4);
    }

    #[test]
    fn neighbor_table_is_symmetric_and_regular() {
        let s5 = StarGraph::new(5);
        for node in 0..s5.node_count() as NodeId {
            let mut seen = std::collections::HashSet::new();
            for port in 0..s5.degree() {
                let nb = s5.neighbor(node, port);
                assert_ne!(nb, node, "no self loops");
                assert!(seen.insert(nb), "neighbours must be distinct");
                // undirected: the reverse edge exists on the same dimension
                assert_eq!(s5.neighbor(nb, port), node);
                assert!(s5.are_adjacent(node, nb));
            }
        }
    }

    #[test]
    fn distance_agrees_with_bfs() {
        use std::collections::VecDeque;
        let s4 = StarGraph::new(4);
        let count = s4.node_count();
        for src in 0..count as NodeId {
            let mut dist = vec![usize::MAX; count];
            dist[src as usize] = 0;
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                for port in 0..s4.degree() {
                    let v = s4.neighbor(u, port);
                    if dist[v as usize] == usize::MAX {
                        dist[v as usize] = dist[u as usize] + 1;
                        q.push_back(v);
                    }
                }
            }
            for dst in 0..count as NodeId {
                assert_eq!(s4.distance(src, dst), dist[dst as usize]);
            }
        }
    }

    #[test]
    fn min_route_ports_reduce_distance() {
        let s5 = StarGraph::new(5);
        let dest: NodeId = 77;
        for node in 0..s5.node_count() as NodeId {
            let d = s5.distance(node, dest);
            let ports = s5.min_route_ports(node, dest);
            if node == dest {
                assert!(ports.is_empty());
                continue;
            }
            assert!(!ports.is_empty(), "every non-destination node must have a profitable port");
            for p in 0..s5.degree() {
                let nd = s5.distance(s5.neighbor(node, p), dest);
                if ports.contains(&p) {
                    assert_eq!(nd, d - 1);
                } else {
                    assert!(nd >= d);
                }
            }
        }
    }

    #[test]
    fn diameter_is_achieved() {
        let s5 = StarGraph::new(5);
        let max = (0..s5.node_count() as NodeId).map(|v| s5.distance(0, v)).max().unwrap();
        assert_eq!(max, s5.diameter());
    }

    #[test]
    fn color_classes_are_balanced_and_proper() {
        let s5 = StarGraph::new(5);
        let zeros = (0..s5.node_count() as NodeId).filter(|&v| s5.color(v) == Color::Zero).count();
        assert_eq!(zeros, s5.node_count() / 2);
        for node in 0..s5.node_count() as NodeId {
            for port in 0..s5.degree() {
                assert_ne!(s5.color(node), s5.color(s5.neighbor(node, port)));
            }
        }
    }

    #[test]
    fn mean_distance_matches_direct_average() {
        let s5 = StarGraph::new(5);
        let total: usize = (1..s5.node_count() as NodeId).map(|v| s5.distance(0, v)).sum();
        let direct = total as f64 / (s5.node_count() - 1) as f64;
        assert!((s5.mean_distance() - direct).abs() < 1e-12);
    }

    #[test]
    fn port_dimension_mapping_roundtrip() {
        let s6 = StarGraph::new(6);
        for port in 0..s6.degree() {
            assert_eq!(s6.dimension_to_port(s6.port_to_dimension(port)), port);
        }
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn too_large_star_graph_rejected() {
        let _ = StarGraph::new(10);
    }
}
