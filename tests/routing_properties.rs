//! Cross-crate properties of the routing algorithms over the real topology:
//! every admissible candidate leads the message along a minimal path, the
//! escape discipline never runs out of levels, and random walks following the
//! algorithms always reach the destination in exactly the minimal number of
//! hops.  These are the invariants the analytical model silently relies on.

use star_wormhole::routing::MessageRoutingState;
use star_wormhole::{EnhancedNbc, NHop, Nbc, Permutation, RoutingAlgorithm, StarGraph, Topology};

fn walk_to_destination(
    topology: &StarGraph,
    algo: &dyn RoutingAlgorithm,
    src: u32,
    dest: u32,
    pick: impl Fn(usize) -> usize,
) -> usize {
    let mut cur = src;
    let mut state = MessageRoutingState::at_source();
    let mut hops = 0;
    while cur != dest {
        let cands = algo.candidates(topology, cur, dest, &state);
        assert!(!cands.is_empty(), "no candidate from {cur} to {dest} after {hops} hops");
        let choice = cands[pick(cands.len())];
        let next = topology.neighbor(cur, choice.port);
        assert_eq!(
            topology.distance(next, dest) + 1,
            topology.distance(cur, dest),
            "candidates must stay on minimal paths"
        );
        let layout = algo.layout();
        let level =
            if layout.is_adaptive(choice.vc) { None } else { Some(choice.vc - layout.adaptive) };
        state = state.after_hop(topology, cur, next, level);
        cur = next;
        hops += 1;
        assert!(hops <= topology.diameter(), "walk exceeded the diameter");
    }
    hops
}

#[test]
fn all_algorithms_route_every_pair_minimally_on_s4() {
    let topology = StarGraph::new(4);
    let algorithms: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(EnhancedNbc::for_topology(&topology, 5)),
        Box::new(Nbc::for_topology(&topology, 4)),
        Box::new(NHop::for_topology(&topology, 3)),
    ];
    for algo in &algorithms {
        for src in 0..topology.node_count() as u32 {
            for dest in 0..topology.node_count() as u32 {
                if src == dest {
                    continue;
                }
                let hops = walk_to_destination(&topology, algo.as_ref(), src, dest, |_| 0);
                assert_eq!(hops, topology.distance(src, dest), "{}", algo.name());
            }
        }
    }
}

#[test]
fn permutation_distance_equals_walk_length_through_routing() {
    // The adaptivity function of `star-graph` and the candidate sets of
    // `star-routing` must tell the same story about distances.
    let topology = StarGraph::new(5);
    let algo = EnhancedNbc::for_topology(&topology, 6);
    for dest in (0..topology.node_count() as u32).step_by(11) {
        for src in (0..topology.node_count() as u32).step_by(17) {
            if src == dest {
                continue;
            }
            let rel = topology.permutation(src).relative_to(topology.permutation(dest));
            let hops = walk_to_destination(&topology, &algo, src, dest, |n| n / 2);
            assert_eq!(hops, rel.distance_to_identity());
        }
    }
}

/// Deterministic pseudo-random stream (SplitMix64), standing in for the
/// former proptest strategies so the walks stay reproducible without a
/// property-testing dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn random_adaptive_walks_reach_their_destination_on_s5() {
    let topology = StarGraph::new(5);
    let algo = EnhancedNbc::for_topology(&topology, 6);
    let mut state = 0x5EED_0001u64;
    let mut cases = 0;
    while cases < 64 {
        let src = (splitmix64(&mut state) % 120) as u32;
        let dest = (splitmix64(&mut state) % 120) as u32;
        let choice_seed = (splitmix64(&mut state) % 1000) as usize;
        if src == dest {
            continue;
        }
        cases += 1;
        let hops = walk_to_destination(&topology, &algo, src, dest, |n| choice_seed % n);
        assert_eq!(
            hops,
            topology.distance(src, dest),
            "walk {src}->{dest} with choice seed {choice_seed}"
        );
    }
}

#[test]
fn relative_permutation_distance_is_symmetric() {
    let topology = StarGraph::new(5);
    let mut state = 0x5EED_0002u64;
    for _ in 0..64 {
        let a = (splitmix64(&mut state) % 120) as u32;
        let b = (splitmix64(&mut state) % 120) as u32;
        let pa: &Permutation = topology.permutation(a);
        let pb: &Permutation = topology.permutation(b);
        assert_eq!(
            pa.relative_to(pb).distance_to_identity(),
            pb.relative_to(pa).distance_to_identity(),
            "distance between ranks {a} and {b} must be symmetric"
        );
    }
}
