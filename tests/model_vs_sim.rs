//! Cross-crate integration tests: the analytical model (`star-core`) against
//! the flit-level simulator (`star-sim`) on small networks, mirroring the
//! validation methodology of the paper's Section 5 at a scale that stays fast
//! in a debug test run.
//!
//! The simulated side of every tolerance check is a **replicate mean**: each
//! operating point runs three independently seeded replicates (seeds derived
//! from the base seed), so no band is anchored to one arbitrary RNG stream,
//! and every failure message reports the across-replicate 95% confidence
//! interval alongside the mean.

use std::sync::Arc;

use star_wormhole::{
    AnalyticalModel, EnhancedNbc, ModelConfig, ReplicateReport, ReplicateRun, SimConfig, StarGraph,
    Topology as _, TrafficPattern,
};

/// Replicates per simulated operating point.
const REPLICATES: usize = 3;

fn simulate(symbols: usize, v: usize, m: usize, rate: f64, seed_base: u64) -> ReplicateReport {
    let topology = Arc::new(StarGraph::new(symbols));
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), v));
    let config = SimConfig::builder()
        .message_length(m)
        .traffic_rate(rate)
        .warmup_cycles(3_000)
        .measured_messages(3_500)
        .max_cycles(400_000)
        .seed(seed_base)
        .build();
    ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, REPLICATES).run()
}

fn model(symbols: usize, v: usize, m: usize, rate: f64) -> star_wormhole::ModelResult {
    AnalyticalModel::new(
        ModelConfig::builder()
            .symbols(symbols)
            .virtual_channels(v)
            .message_length(m)
            .traffic_rate(rate)
            .build(),
    )
    .solve()
}

#[test]
fn model_matches_simulation_at_light_load_s4() {
    let rate = 0.003;
    let m = model(4, 6, 16, rate);
    let s = simulate(4, 6, 16, rate, 101);
    assert!(!m.saturated);
    assert!(!s.saturated);
    let err = (m.mean_latency - s.latency.mean).abs() / s.latency.mean;
    assert!(
        err < 0.10,
        "light-load error must be small: model {} vs sim {} over {} replicates ({:.1}%)",
        m.mean_latency,
        s.latency.pretty(),
        s.replicates(),
        err * 100.0
    );
}

#[test]
fn model_matches_simulation_at_moderate_load_s4() {
    let rate = 0.015;
    let m = model(4, 6, 16, rate);
    let s = simulate(4, 6, 16, rate, 202);
    assert!(!m.saturated && !s.saturated);
    let err = (m.mean_latency - s.latency.mean).abs() / s.latency.mean;
    assert!(
        err < 0.25,
        "moderate-load error should stay within 25%: model {} vs sim {} over {} replicates \
         ({:.1}%)",
        m.mean_latency,
        s.latency.pretty(),
        s.replicates(),
        err * 100.0
    );
}

#[test]
fn model_and_simulation_agree_on_network_latency_split() {
    // Below saturation the network latency (excluding source queueing) should
    // also track between model and simulator.
    let rate = 0.01;
    let m = model(4, 6, 16, rate);
    let s = simulate(4, 6, 16, rate, 303);
    assert!(!m.saturated && !s.saturated);
    let err = (m.mean_network_latency - s.network_latency.mean).abs() / s.network_latency.mean;
    assert!(
        err < 0.25,
        "network latency: model {} vs sim {}",
        m.mean_network_latency,
        s.network_latency.pretty()
    );
}

#[test]
fn both_model_and_simulation_show_latency_growth_with_load() {
    let rates = [0.004, 0.010, 0.016];
    let mut last_model = 0.0;
    let mut last_sim = 0.0;
    for (i, &rate) in rates.iter().enumerate() {
        let m = model(4, 6, 16, rate);
        let s = simulate(4, 6, 16, rate, 400 + i as u64);
        assert!(!m.saturated && !s.saturated, "rate {rate} unexpectedly saturated");
        assert!(m.mean_latency > last_model);
        assert!(
            s.latency.mean > last_sim,
            "replicate-mean latency must grow with load (rate {rate}: {} after {last_sim})",
            s.latency.pretty()
        );
        last_model = m.mean_latency;
        last_sim = s.latency.mean;
    }
}

#[test]
fn model_matches_simulation_at_light_load_s6_on_the_event_engine() {
    // A full size class above the historical S4/S5 validation ceiling: S6 has
    // 720 nodes and 3600 channels, which the event-driven engine (the
    // default core) makes affordable inside a debug test run — only active
    // channels cost work at ~3% utilisation.
    use star_wormhole::{
        Discipline, Evaluator as _, ModelBackend, Scenario, SimBackend, SimBudget, SimCore,
    };
    let scenario = Scenario::star(6)
        .with_message_length(16)
        .with_discipline(Discipline::EnhancedNbc)
        .with_seed_base(601);
    assert_eq!(scenario.core, SimCore::EventDriven, "event-driven is the default engine");
    let topology = scenario.topology();
    let rate = 0.03 * topology.degree() as f64 / (topology.mean_distance() * 16.0);
    let point = scenario.at(rate);
    let m = ModelBackend::new().evaluate(&point);
    let s = SimBackend::new(SimBudget::Quick).evaluate(&point);
    assert!(!m.saturated && !s.saturated, "S6 must not saturate at light load");
    let err = (m.mean_latency - s.mean_latency).abs() / s.mean_latency;
    assert!(
        err < 0.10,
        "S6 light load: model {} vs sim {} ({:.1}%)",
        m.mean_latency,
        s.mean_latency,
        err * 100.0
    );
}

#[test]
fn simulated_hop_count_matches_mean_distance() {
    let s = simulate(4, 6, 16, 0.005, 7);
    let topo = StarGraph::new(4);
    for run in &s.runs {
        assert!(
            (run.mean_hops - topo.mean_distance()).abs() < 0.15,
            "uniform traffic must produce the analytic mean distance (got {}, want {})",
            run.mean_hops,
            topo.mean_distance()
        );
    }
}

#[test]
fn model_multiplexing_tracks_observed_multiplexing() {
    let rate = 0.015;
    let m = model(4, 6, 16, rate);
    let s = simulate(4, 6, 16, rate, 17);
    assert!(!m.saturated && !s.saturated);
    let observed =
        s.runs.iter().map(|r| r.observed_multiplexing).sum::<f64>() / s.replicates() as f64;
    // Both are ≥ 1 and should agree loosely well below saturation.
    assert!(m.multiplexing >= 1.0 && observed >= 1.0);
    assert!((m.multiplexing - observed).abs() < 0.5);
}

#[test]
fn replicate_interval_brackets_the_replicate_mean_sensibly() {
    // the CI the tolerance checks report must be a plausible summary: finite,
    // positive for independent seeds, and small relative to the mean at
    // light load
    let s = simulate(4, 6, 16, 0.005, 808);
    assert_eq!(s.replicates(), REPLICATES);
    assert!(s.latency.ci95 > 0.0);
    assert!(s.latency.ci95.is_finite());
    assert!(
        s.latency.relative_ci95() < 0.25,
        "independent light-load replicates should agree: {}",
        s.latency.pretty()
    );
}
