//! Serving-contract test: an in-process [`Daemon`] on an ephemeral port must
//! answer a mixed query batch **byte-identically** to batch [`ModelBackend`]
//! solves of the same operating points, serve the whole second pass from its
//! solve cache, answer `stats`, survive malformed and out-of-model input
//! without dying, and drain cleanly on the wire `shutdown` op.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use star_wormhole::serve::protocol::{query_line, Query, SolveMode};
use star_wormhole::serve::{Daemon, ServeConfig, ServerState};
use star_wormhole::{
    encode_estimate, load_rate_grid, Discipline, Evaluator as _, ModelBackend, Scenario,
    TopologyKind, WireScenario,
};

/// Binds a daemon on an ephemeral loopback port and runs it on a thread.
fn spawn_daemon() -> (SocketAddr, Arc<ServerState>, JoinHandle<std::io::Result<()>>) {
    spawn_daemon_with(ServeConfig::default())
}

/// [`spawn_daemon`] with explicit tuning (prewarm lists, connection budgets).
fn spawn_daemon_with(
    config: ServeConfig,
) -> (SocketAddr, Arc<ServerState>, JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::bind(config).expect("bind an ephemeral port");
    let addr = daemon.local_addr();
    let state = daemon.state();
    (addr, state, thread::spawn(move || daemon.run()))
}

/// A line-delimited JSON client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to the daemon");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone the stream"));
        Self { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write request");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection early");
        assert!(line.ends_with('\n'), "responses are newline-terminated: {line:?}");
        line.truncate(line.len() - 1);
        line
    }
}

/// The mixed batch: three topology families, two disciplines, two message
/// lengths — with the equivalent batch-API scenario for each query.
fn mixed_cases() -> Vec<(WireScenario, Scenario, f64)> {
    let wire = |kind, size, discipline, m| WireScenario {
        kind,
        size,
        discipline,
        virtual_channels: 6,
        message_length: m,
    };
    vec![
        (
            wire(TopologyKind::Star, 4, Discipline::EnhancedNbc, 16),
            Scenario::star(4).with_message_length(16),
            0.002,
        ),
        (
            wire(TopologyKind::Star, 4, Discipline::EnhancedNbc, 16),
            Scenario::star(4).with_message_length(16),
            0.004,
        ),
        (
            wire(TopologyKind::Star, 5, Discipline::Nbc, 32),
            Scenario::star(5).with_discipline(Discipline::Nbc),
            0.001,
        ),
        (
            wire(TopologyKind::Hypercube, 5, Discipline::EnhancedNbc, 32),
            Scenario::hypercube(5),
            0.001,
        ),
        (
            wire(TopologyKind::Torus, 4, Discipline::Deterministic, 16),
            Scenario::torus(4).with_discipline(Discipline::Deterministic).with_message_length(16),
            0.002,
        ),
    ]
}

#[test]
fn daemon_answers_byte_identically_and_caches_the_second_pass() {
    let cases = mixed_cases();
    // the reference answers: plain batch-API solves, no daemon involved
    let backend = ModelBackend::new();
    let expected: Vec<String> =
        cases.iter().map(|(_, s, r)| encode_estimate(&backend.evaluate(&s.at(*r)))).collect();

    let (addr, state, handle) = spawn_daemon();
    let mut client = Client::connect(addr);
    for (pass, cached) in [(1u64, "cold"), (2, "exact")] {
        // pipeline the whole pass, then read the answers in order
        for (i, (wire, _, rate)) in cases.iter().enumerate() {
            let query = Query {
                id: pass * 100 + i as u64,
                wire: *wire,
                rate: *rate,
                mode: SolveMode::Exact,
            };
            client.send(&query_line(&query));
        }
        for (i, (wire, _, _)) in cases.iter().enumerate() {
            let id = pass * 100 + i as u64;
            let response = client.recv();
            let prefix = format!("{{\"id\":{id},\"status\":\"ok\",\"cached\":\"{cached}\"");
            assert!(
                response.starts_with(&prefix),
                "pass {pass} on {wire:?}: expected {cached}, got {response}"
            );
            // byte identity: the daemon's result field carries exactly the
            // bytes `encode_estimate` produces for the batch solve
            let suffix = format!("\"result\":{}}}", expected[i]);
            assert!(
                response.ends_with(&suffix),
                "pass {pass} on {wire:?}: daemon diverged from the batch solve\n  \
                 daemon:   {response}\n  expected: …{suffix}"
            );
            if pass == 2 {
                assert!(
                    !response.contains("\"hits\":0,"),
                    "a cache hit must bump the entry's counter: {response}"
                );
            }
        }
    }

    // the stats op reflects the ten queries and the second-pass hits
    client.send("{\"op\":\"stats\",\"id\":900}");
    let stats = client.recv();
    assert!(stats.starts_with("{\"id\":900,\"status\":\"ok\",\"stats\":{"), "got {stats}");
    assert!(stats.contains("\"queries\":10"), "ten queries answered: {stats}");
    assert!(stats.contains("\"errors\":0"), "no errors yet: {stats}");

    // shutdown drains: the op is acknowledged, then the daemon thread ends
    client.send("{\"op\":\"shutdown\",\"id\":901}");
    assert_eq!(client.recv(), "{\"id\":901,\"status\":\"ok\",\"shutdown\":true}");
    handle.join().expect("daemon thread").expect("clean drain");
    assert_eq!(state.stats().get("queries").and_then(|v| v.as_u64()), Some(10));
}

#[test]
fn warm_mode_stays_within_solver_tolerance_of_exact() {
    let (addr, _state, handle) = spawn_daemon();
    let mut client = Client::connect(addr);
    // seed the chain with an exact solve, then ask warm for a nearby rate
    client.send(
        "{\"id\":1,\"topology\":\"star\",\"size\":4,\"m\":16,\"rate\":0.002,\"mode\":\"exact\"}",
    );
    let _ = client.recv();
    client.send(
        "{\"id\":2,\"topology\":\"star\",\"size\":4,\"m\":16,\"rate\":0.0021,\"mode\":\"warm\"}",
    );
    let warm = client.recv();
    assert!(warm.starts_with("{\"id\":2,\"status\":\"ok\",\"cached\":\"warm\""), "got {warm}");
    let latency = |line: &str| -> f64 {
        let tail = line.split("\"latency\":").nth(1).expect("a latency field");
        tail[..tail.find(',').expect("more fields follow")].parse().expect("a number")
    };
    let exact = ModelBackend::new()
        .evaluate(&Scenario::star(4).with_message_length(16).at(0.0021))
        .mean_latency;
    let relative = (latency(&warm) - exact).abs() / exact;
    assert!(relative < 1e-6, "warm-started solve drifted {relative:e} from the cold one");
    client.send("{\"op\":\"shutdown\",\"id\":3}");
    let _ = client.recv();
    handle.join().expect("daemon thread").expect("clean drain");
}

#[test]
fn prewarmed_daemon_answers_its_first_query_from_the_cache_byte_identically() {
    let wire = WireScenario {
        kind: TopologyKind::Star,
        size: 4,
        discipline: Discipline::EnhancedNbc,
        virtual_channels: 6,
        message_length: 16,
    };
    let config =
        ServeConfig { prewarm: vec![wire], prewarm_rates: 3, shards: 4, ..ServeConfig::default() };
    let daemon = Daemon::bind(config).expect("bind and prewarm");
    let report = *daemon.prewarmed().expect("a prewarm report when --prewarm is set");
    assert_eq!((report.configs, report.solves), (1, 3), "one config × three grid rates");
    let addr = daemon.local_addr();
    let handle = thread::spawn(move || daemon.run());

    // the very first client query at a grid rate is already cached — and
    // byte-identical to a batch solve of the same operating point
    let scenario = wire.scenario();
    let rate = load_rate_grid(&scenario, 3)[1];
    let expected = encode_estimate(&ModelBackend::new().evaluate(&scenario.at(rate)));
    let mut client = Client::connect(addr);
    client.send(&query_line(&Query { id: 1, wire, rate, mode: SolveMode::Exact }));
    let response = client.recv();
    assert!(
        response.starts_with("{\"id\":1,\"status\":\"ok\",\"cached\":\"exact\""),
        "the first query must hit the prewarmed cache: {response}"
    );
    assert!(
        response.ends_with(&format!("\"result\":{expected}}}")),
        "prewarmed answer diverged from the batch solve\n  daemon:   {response}\n  \
         expected: …{expected}"
    );
    client.send("{\"op\":\"shutdown\",\"id\":2}");
    let _ = client.recv();
    handle.join().expect("daemon thread").expect("clean drain");
}

#[test]
fn duplicate_in_flight_queries_coalesce_into_one_solve() {
    let (addr, state, handle) = spawn_daemon();
    let wire = WireScenario {
        kind: TopologyKind::Star,
        size: 4,
        discipline: Discipline::EnhancedNbc,
        virtual_channels: 6,
        message_length: 16,
    };
    let rate = 0.003;
    let expected = encode_estimate(
        &ModelBackend::new().evaluate(&Scenario::star(4).with_message_length(16).at(rate)),
    );

    // one pipelined burst of identical queries: the first becomes the
    // flight leader, the rest coalesce onto it (or hit the cache if the
    // daemon split the burst across windows) — never a repeated solve
    let mut client = Client::connect(addr);
    for id in 0..6 {
        client.send(&query_line(&Query { id, wire, rate, mode: SolveMode::Exact }));
    }
    for id in 0..6 {
        let response = client.recv();
        assert!(
            response.starts_with(&format!("{{\"id\":{id},\"status\":\"ok\"")),
            "responses stay in request order: {response}"
        );
        assert!(
            response.ends_with(&format!("\"result\":{expected}}}")),
            "every duplicate gets the same bytes as a batch solve: {response}"
        );
    }

    let stats = state.stats();
    let solves = stats.get("solves").expect("a solves stats block");
    let count = |key: &str| solves.get(key).and_then(|v| v.as_u64()).expect("a counter");
    assert_eq!(count("inserted"), 1, "six duplicates must cost exactly one solve: {stats:?}");
    assert_eq!(count("entries"), 1, "one cache entry stored: {stats:?}");
    assert_eq!(
        count("coalesced") + count("hits"),
        5,
        "the other five queries coalesced in-window or hit the cache: {stats:?}"
    );

    client.send("{\"op\":\"shutdown\",\"id\":9}");
    let _ = client.recv();
    handle.join().expect("daemon thread").expect("clean drain");
}

#[test]
fn connections_past_the_budget_get_a_busy_line_then_eof() {
    let config = ServeConfig { max_connections: 1, ..ServeConfig::default() };
    let (addr, _state, handle) = spawn_daemon_with(config);

    // occupy the whole budget: one answered query pins the worker thread
    let mut first = Client::connect(addr);
    first.send(
        "{\"id\":1,\"topology\":\"star\",\"size\":4,\"m\":16,\"rate\":0.002,\"mode\":\"exact\"}",
    );
    let ok = first.recv();
    assert!(ok.starts_with("{\"id\":1,\"status\":\"ok\""), "got {ok}");

    // a second connection is refused gracefully: one busy line, then EOF
    let second = TcpStream::connect(addr).expect("connect past the budget");
    let mut reader = BufReader::new(second);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read the busy line");
    assert_eq!(
        line,
        "{\"id\":null,\"status\":\"busy\",\"error\":\"connection budget (1) exhausted; \
         retry later\"}\n"
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("read after busy"), 0, "busy closes the stream");

    // the admitted connection is unaffected and can still drain the daemon
    first.send(
        "{\"id\":2,\"topology\":\"star\",\"size\":4,\"m\":16,\"rate\":0.002,\"mode\":\"exact\"}",
    );
    let again = first.recv();
    assert!(again.starts_with("{\"id\":2,\"status\":\"ok\",\"cached\":\"exact\""), "got {again}");
    first.send("{\"op\":\"shutdown\",\"id\":3}");
    let _ = first.recv();
    handle.join().expect("daemon thread").expect("clean drain");
}

#[test]
fn bad_input_yields_error_responses_not_a_dead_daemon() {
    let (addr, _state, handle) = spawn_daemon();
    let mut client = Client::connect(addr);
    // not JSON, unknown topology, out-of-range size, missing rate — each one
    // line, each answered, none fatal
    client.send("this is not json");
    assert!(client.recv().contains("\"status\":\"error\""));
    client.send("{\"id\":1,\"topology\":\"mesh\",\"size\":4,\"rate\":0.001}");
    let unknown = client.recv();
    assert!(unknown.starts_with("{\"id\":1,\"status\":\"error\""), "got {unknown}");
    client.send("{\"id\":2,\"topology\":\"star\",\"size\":99,\"rate\":0.001}");
    let range = client.recv();
    assert!(range.starts_with("{\"id\":2,\"status\":\"error\""), "got {range}");
    client.send("{\"id\":3,\"topology\":\"star\",\"size\":4}");
    let missing = client.recv();
    assert!(missing.starts_with("{\"id\":3,\"status\":\"error\""), "got {missing}");
    // the daemon is still alive and solving
    client.send("{\"id\":4,\"topology\":\"star\",\"size\":4,\"m\":16,\"rate\":0.002}");
    let ok = client.recv();
    assert!(ok.starts_with("{\"id\":4,\"status\":\"ok\""), "got {ok}");
    client.send("{\"op\":\"shutdown\",\"id\":5}");
    let _ = client.recv();
    handle.join().expect("daemon thread").expect("clean drain");
}
