//! Integration tests on the *shape* of the reproduced evaluation: the
//! qualitative features of the paper's Figure 1 that the reproduction must
//! preserve even though absolute cycle counts differ from the authors'
//! testbed.  These are model-only (no simulation), so they run in
//! milliseconds.

use star_wormhole::model::{saturation_rate, sweep_traffic, ModelConfig};

fn s5(v: usize, m: usize) -> ModelConfig {
    ModelConfig::builder()
        .symbols(5)
        .virtual_channels(v)
        .message_length(m)
        .traffic_rate(0.001)
        .build()
}

#[test]
fn latency_curves_are_flat_then_knee_then_saturate() {
    // The canonical latency-vs-load shape: near-constant at light load, a
    // knee, then divergence.
    let rates: Vec<f64> = (1..=30).map(|i| 0.001 * i as f64).collect();
    let points = sweep_traffic(s5(6, 32), &rates);
    let zero_load = points[0].result.mean_latency;
    // light-load region: within 25% of the zero-load latency
    assert!(points[2].result.mean_latency < zero_load * 1.25);
    // the curve eventually saturates
    assert!(points.iter().any(|p| p.result.saturated));
    // and just before saturation the latency has at least doubled
    let last_finite = points.iter().rev().find(|p| !p.result.saturated).unwrap();
    assert!(last_finite.result.mean_latency > zero_load * 1.5);
}

#[test]
fn more_virtual_channels_never_hurt_and_push_saturation_right() {
    let rates: Vec<f64> = (1..=12).map(|i| 0.0012 * i as f64).collect();
    let v6 = sweep_traffic(s5(6, 32), &rates);
    let v9 = sweep_traffic(s5(9, 32), &rates);
    let v12 = sweep_traffic(s5(12, 32), &rates);
    for ((a, b), c) in v6.iter().zip(&v9).zip(&v12) {
        if !a.result.saturated && !b.result.saturated {
            assert!(b.result.mean_latency <= a.result.mean_latency + 1e-6);
        }
        if !b.result.saturated && !c.result.saturated {
            assert!(c.result.mean_latency <= b.result.mean_latency + 1e-6);
        }
    }
    let sat6 = saturation_rate(s5(6, 32), 0.02);
    let sat12 = saturation_rate(s5(12, 32), 0.02);
    assert!(sat12 >= sat6 * 0.95, "V=12 must not saturate earlier than V=6");
}

#[test]
fn doubling_message_length_roughly_halves_the_saturation_rate() {
    let sat32 = saturation_rate(s5(6, 32), 0.02);
    let sat64 = saturation_rate(s5(6, 64), 0.02);
    let ratio = sat32 / sat64;
    assert!(
        (1.6..=2.6).contains(&ratio),
        "expected roughly 2x saturation-rate ratio between M=32 and M=64, got {ratio}"
    );
}

#[test]
fn m64_curve_sits_above_m32_curve() {
    let rates: Vec<f64> = (1..=8).map(|i| 0.0008 * i as f64).collect();
    let m32 = sweep_traffic(s5(9, 32), &rates);
    let m64 = sweep_traffic(s5(9, 64), &rates);
    for (a, b) in m32.iter().zip(&m64) {
        if !a.result.saturated && !b.result.saturated {
            assert!(b.result.mean_latency > a.result.mean_latency + 25.0);
        }
    }
}

#[test]
fn zero_load_latency_is_message_length_plus_mean_distance_for_every_figure_configuration() {
    for &v in &[6usize, 9, 12] {
        for &m in &[32usize, 64] {
            let config = ModelConfig::builder()
                .symbols(5)
                .virtual_channels(v)
                .message_length(m)
                .traffic_rate(0.0)
                .build();
            let r = star_wormhole::AnalyticalModel::new(config).solve();
            assert!((r.mean_latency - (m as f64 + r.mean_distance)).abs() < 1e-6);
        }
    }
}

#[test]
fn network_size_scaling_is_monotone() {
    // Larger star graphs have longer paths, hence higher zero-load latency and
    // lower per-node saturation rates at the same V and M.
    let mut last_latency = 0.0;
    let mut last_sat = f64::INFINITY;
    for n in 4..=6usize {
        let cfg = ModelConfig::builder()
            .symbols(n)
            .virtual_channels(6)
            .message_length(32)
            .traffic_rate(0.0)
            .build();
        let zero = star_wormhole::AnalyticalModel::new(cfg).solve().mean_latency;
        assert!(zero > last_latency);
        last_latency = zero;
        let sat = saturation_rate(cfg, 0.02);
        assert!(sat < last_sat, "S{n} must saturate at a lower per-node rate");
        last_sat = sat;
    }
}
