//! Cross-validation of the generic traversal-spectrum model against the
//! flit-level simulator on the torus — a topology no closed-form model in
//! this workspace covers, so every analytical answer here flows through the
//! BFS census of `TraversalSpectrum` and the `SpectrumModel` solver.  The
//! same operating point answered by both backends must agree within the
//! tolerance bands of the star and hypercube validations (10% at light
//! load, 25% at moderate load), for the adaptive scheme and the
//! deterministic baseline.

use std::sync::Arc;

use star_wormhole::{
    spectrum_saturation_rate, Discipline, Evaluator as _, ModelBackend, PointEstimate, Scenario,
    SimBackend, SimBudget, SweepRunner, SweepSpec, TraversalSpectrum,
};

/// A `T_k` scenario with short messages so the simulated points stay fast in
/// a debug test run (single replicate — the star-side validation exercises
/// the replicate-mean path).
fn torus(side: usize, discipline: Discipline) -> Scenario {
    Scenario::torus(side).with_message_length(16).with_discipline(discipline)
}

/// The generation rate that targets channel utilisation `u` on the scenario's
/// topology (`λ_g = u·degree/(d̄·M)`).
fn rate_at_utilisation(scenario: &Scenario, u: f64) -> f64 {
    let topology = scenario.topology();
    u * topology.degree() as f64 / (topology.mean_distance() * scenario.message_length as f64)
}

fn relative_error(model: &PointEstimate, sim: &PointEstimate) -> f64 {
    (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency
}

#[test]
fn model_matches_simulation_at_light_load_t4_to_t8() {
    // ~3% channel utilisation, the regime the star light-load validation
    // runs in, held to the same 10% band.  T8 (64 nodes) rides along now
    // that the event-driven default engine only pays for active channels.
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    for side in [4usize, 6, 8] {
        let scenario = torus(side, Discipline::EnhancedNbc).with_seed_base(501);
        let point = scenario.at(rate_at_utilisation(&scenario, 0.03));
        let m = model.evaluate(&point);
        let s = sim.evaluate(&point);
        assert!(!m.saturated && !s.saturated, "T{side} must not saturate at light load");
        let err = relative_error(&m, &s);
        assert!(
            err < 0.10,
            "T{side} light load: model {} vs sim {} ({:.1}%)",
            m.mean_latency,
            s.mean_latency,
            err * 100.0
        );
    }
}

#[test]
fn model_matches_simulation_at_moderate_load_both_disciplines() {
    // ~10% channel utilisation, matching the star and hypercube
    // moderate-load validations' regime and 25% band — for the adaptive
    // scheme *and* the deterministic baseline
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    for side in [4usize, 6] {
        for discipline in [Discipline::EnhancedNbc, Discipline::Deterministic] {
            let scenario = torus(side, discipline).with_seed_base(502);
            let point = scenario.at(rate_at_utilisation(&scenario, 0.10));
            let m = model.evaluate(&point);
            let s = sim.evaluate(&point);
            assert!(!m.saturated && !s.saturated, "T{side}/{discipline:?} must not saturate");
            let err = relative_error(&m, &s);
            assert!(
                err < 0.25,
                "T{side}/{discipline:?} moderate load: model {} vs sim {} ({:.1}%)",
                m.mean_latency,
                s.mean_latency,
                err * 100.0
            );
        }
    }
}

#[test]
fn both_backends_show_latency_growth_with_load_on_the_torus() {
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    let scenario = torus(6, Discipline::EnhancedNbc).with_seed_base(503);
    let mut last_model = 0.0;
    let mut last_sim = 0.0;
    for u in [0.10, 0.25, 0.40] {
        let point = scenario.at(rate_at_utilisation(&scenario, u));
        let m = model.evaluate(&point);
        let s = sim.evaluate(&point);
        assert!(!m.saturated && !s.saturated, "utilisation {u} unexpectedly saturated");
        assert!(m.mean_latency > last_model);
        assert!(s.mean_latency > last_sim);
        last_model = m.mean_latency;
        last_sim = s.mean_latency;
    }
}

#[test]
fn warm_started_torus_sweep_equals_cold_start() {
    // the warm-start contract carried over from the closed-form paths: same
    // fixed points (to solver tolerance), strictly fewer total iterations.
    // The grid clusters just below the saturation knee — far below it the
    // torus fixed point barely moves between rates and a warm seed saves
    // nothing, so the iteration win is only observable near the knee
    let scenario = torus(6, Discipline::EnhancedNbc);
    let params = scenario.model_params(0.0).expect("valid pairing").expect("modelled");
    let spectrum = Arc::new(TraversalSpectrum::new(scenario.topology().as_ref()));
    let knee = spectrum_saturation_rate(params, &spectrum, 0.02);
    let rates: Vec<f64> = (1..=8).map(|i| knee * (0.60 + 0.04 * i as f64)).collect();
    let spec = SweepSpec::new("t6", scenario, rates);
    let runner = SweepRunner::with_threads(1);
    let warm = runner.run_one(&ModelBackend::new(), &spec);
    let cold = runner.run_one(&ModelBackend::cold(), &spec);
    let mut warm_iterations = 0;
    let mut cold_iterations = 0;
    for (w, c) in warm.estimates.iter().zip(&cold.estimates) {
        assert_eq!(w.saturated, c.saturated);
        if !w.saturated {
            let rel = (w.mean_latency - c.mean_latency).abs() / c.mean_latency;
            assert!(rel < 1e-9, "warm/cold fixed points differ by {rel}");
        }
        warm_iterations += w.iterations().unwrap();
        cold_iterations += c.iterations().unwrap();
    }
    assert!(
        warm_iterations < cold_iterations,
        "warm-started sweep must use fewer iterations ({warm_iterations} vs {cold_iterations})"
    );
}
