//! The legacy-equivalence harness: the ticking reference engine and the
//! event-driven engine must produce **byte-identical** results, replicate for
//! replicate, on every topology family.
//!
//! Both engines share the RNG streams, the stage order and the staged-update
//! order, so equal configurations must yield equal [`SimReport`]s — not just
//! statistically compatible ones.  The asserts therefore use full struct
//! equality (every field, including float latency means and raw flit counts)
//! rather than tolerance bands; a tolerance would hide exactly the class of
//! bug (a reordered RNG draw, a skipped counter) the harness exists to catch.

use std::sync::Arc;

use star_wormhole::{
    EnhancedNbc, Hypercube, ReplicateReport, ReplicateRun, Ring, SimConfig, SimCore, SimReport,
    StarGraph, Topology, Torus, TrafficPattern,
};

/// Replicates per compared operating point — more than one so replicate-seed
/// derivation is part of the contract.
const REPLICATES: usize = 3;

fn run(
    topology: Arc<dyn Topology>,
    rate: f64,
    seed: u64,
    core: SimCore,
    configure: impl Fn(star_wormhole::sim::SimConfigBuilder) -> star_wormhole::sim::SimConfigBuilder,
) -> ReplicateReport {
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
    let builder = SimConfig::builder()
        .message_length(16)
        .traffic_rate(rate)
        .warmup_cycles(2_000)
        .measured_messages(2_000)
        .max_cycles(200_000)
        .seed(seed)
        .core(core);
    let config = configure(builder).build();
    ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, REPLICATES).run()
}

fn both(
    topology: Arc<dyn Topology>,
    rate: f64,
    seed: u64,
    configure: impl Fn(star_wormhole::sim::SimConfigBuilder) -> star_wormhole::sim::SimConfigBuilder
        + Copy,
) -> (ReplicateReport, ReplicateReport) {
    let ticking = run(Arc::clone(&topology), rate, seed, SimCore::Ticking, configure);
    let event = run(topology, rate, seed, SimCore::EventDriven, configure);
    (ticking, event)
}

fn assert_identical(label: &str, ticking: &ReplicateReport, event: &ReplicateReport) {
    assert_eq!(ticking.replicates(), event.replicates(), "{label}: replicate count");
    for (i, (t, e)) in ticking.runs.iter().zip(&event.runs).enumerate() {
        assert_eq!(t, e, "{label}: replicate {i} must be byte-identical across engines");
    }
    assert_eq!(ticking, event, "{label}: replicate summary must be byte-identical");
}

#[test]
fn engines_are_byte_identical_on_the_star_graph() {
    let (t, e) = both(Arc::new(StarGraph::new(4)), 0.010, 1101, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert!(e.runs.iter().all(|r| r.measured_messages >= 2_000));
    assert_identical("S4", &t, &e);
}

#[test]
fn engines_are_byte_identical_on_the_hypercube() {
    let (t, e) = both(Arc::new(Hypercube::new(5)), 0.010, 1102, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert_identical("Q5", &t, &e);
}

#[test]
fn engines_are_byte_identical_on_the_torus() {
    let (t, e) = both(Arc::new(Torus::new(6)), 0.008, 1103, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert_identical("T6", &t, &e);
}

#[test]
fn engines_are_byte_identical_on_the_ring() {
    let (t, e) = both(Arc::new(Ring::new(8)), 0.010, 1104, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert_identical("R8", &t, &e);
}

#[test]
fn engines_agree_on_the_saturated_side_too() {
    // Beyond saturation the run ends through the queue-limit branch; the
    // engines must agree on the termination cycle and flags, not just on
    // happy-path statistics.
    let (t, e) = both(Arc::new(StarGraph::new(4)), 0.2, 1105, |b| {
        b.measured_messages(50_000).max_cycles(60_000).saturation_queue_limit(100)
    });
    assert!(e.saturated, "this operating point is far beyond saturation");
    assert_identical("S4 overload", &t, &e);
    for r in &e.runs {
        assert!(r.saturated && !r.deadlock_detected);
    }
}

/// Event-scheduled injection regression: the exact flit counts the arrival
/// calendar produces, pinned per seed against the legacy per-cycle Poisson
/// polling.  A change to arrival scheduling (the RNG stream, the
/// cycle-rounding predicate, the draw order across nodes) moves these
/// numbers and must be caught, not absorbed.
#[test]
fn injected_flit_counts_per_seed_are_pinned_across_engines() {
    let expected: [(u64, u64, u64); 3] =
        [(2101, 27_762, 501), (2102, 27_186, 500), (2103, 27_540, 500)];
    for (seed, flit_transfers, measured) in expected {
        let single = |core| {
            let topology: Arc<dyn Topology> = Arc::new(StarGraph::new(4));
            let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
            let config = SimConfig::builder()
                .message_length(16)
                .traffic_rate(0.006)
                .warmup_cycles(1_000)
                .measured_messages(500)
                .max_cycles(200_000)
                .seed(seed)
                .core(core)
                .build();
            let run: SimReport =
                ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, 1)
                    .run()
                    .runs
                    .remove(0);
            run
        };
        let ticking = single(SimCore::Ticking);
        let event = single(SimCore::EventDriven);
        assert_eq!(ticking, event, "seed {seed}");
        assert_eq!(
            (event.flit_transfers, event.measured_messages),
            (flit_transfers, measured),
            "seed {seed}: pinned injection/transfer counts moved"
        );
    }
}
