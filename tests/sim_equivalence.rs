//! The legacy-equivalence harness: the ticking reference engine and the
//! event-driven engine must produce **byte-identical** results, replicate for
//! replicate, on every topology family.
//!
//! Both engines share the RNG streams, the stage order and the staged-update
//! order, so equal configurations must yield equal [`SimReport`]s — not just
//! statistically compatible ones.  The asserts therefore use full struct
//! equality (every field, including float latency means and raw flit counts)
//! rather than tolerance bands; a tolerance would hide exactly the class of
//! bug (a reordered RNG draw, a skipped counter) the harness exists to catch.

use std::sync::Arc;

use star_wormhole::{
    EnhancedNbc, Hypercube, ReplicateReport, ReplicateRun, Ring, SimConfig, SimCore, SimReport,
    StarGraph, Topology, Torus, TrafficPattern,
};

/// Replicates per compared operating point — more than one so replicate-seed
/// derivation is part of the contract.
const REPLICATES: usize = 3;

fn run(
    topology: Arc<dyn Topology>,
    rate: f64,
    seed: u64,
    core: SimCore,
    configure: impl Fn(star_wormhole::sim::SimConfigBuilder) -> star_wormhole::sim::SimConfigBuilder,
) -> ReplicateReport {
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
    let builder = SimConfig::builder()
        .message_length(16)
        .traffic_rate(rate)
        .warmup_cycles(2_000)
        .measured_messages(2_000)
        .max_cycles(200_000)
        .seed(seed)
        .core(core);
    let config = configure(builder).build();
    ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, REPLICATES).run()
}

fn both(
    topology: Arc<dyn Topology>,
    rate: f64,
    seed: u64,
    configure: impl Fn(star_wormhole::sim::SimConfigBuilder) -> star_wormhole::sim::SimConfigBuilder
        + Copy,
) -> (ReplicateReport, ReplicateReport) {
    let ticking = run(Arc::clone(&topology), rate, seed, SimCore::Ticking, configure);
    let event = run(topology, rate, seed, SimCore::EventDriven, configure);
    (ticking, event)
}

fn assert_identical(label: &str, ticking: &ReplicateReport, event: &ReplicateReport) {
    assert_eq!(ticking.replicates(), event.replicates(), "{label}: replicate count");
    for (i, (t, e)) in ticking.runs.iter().zip(&event.runs).enumerate() {
        assert_eq!(t, e, "{label}: replicate {i} must be byte-identical across engines");
    }
    assert_eq!(ticking, event, "{label}: replicate summary must be byte-identical");
}

#[test]
fn engines_are_byte_identical_on_the_star_graph() {
    let (t, e) = both(Arc::new(StarGraph::new(4)), 0.010, 1101, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert!(e.runs.iter().all(|r| r.measured_messages >= 2_000));
    assert_identical("S4", &t, &e);
}

#[test]
fn engines_are_byte_identical_on_the_hypercube() {
    let (t, e) = both(Arc::new(Hypercube::new(5)), 0.010, 1102, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert_identical("Q5", &t, &e);
}

#[test]
fn engines_are_byte_identical_on_the_torus() {
    let (t, e) = both(Arc::new(Torus::new(6)), 0.008, 1103, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert_identical("T6", &t, &e);
}

#[test]
fn engines_are_byte_identical_on_the_ring() {
    let (t, e) = both(Arc::new(Ring::new(8)), 0.010, 1104, |b| b);
    assert!(!e.saturated && !e.deadlock_detected);
    assert_identical("R8", &t, &e);
}

#[test]
fn engines_agree_on_the_saturated_side_too() {
    // Beyond saturation the run ends through the queue-limit branch; the
    // engines must agree on the termination cycle and flags, not just on
    // happy-path statistics.
    let (t, e) = both(Arc::new(StarGraph::new(4)), 0.2, 1105, |b| {
        b.measured_messages(50_000).max_cycles(60_000).saturation_queue_limit(100)
    });
    assert!(e.saturated, "this operating point is far beyond saturation");
    assert_identical("S4 overload", &t, &e);
    for r in &e.runs {
        assert!(r.saturated && !r.deadlock_detected);
    }
}

#[test]
fn engines_agree_on_stage_skips_near_saturation() {
    // Heavy load exercises the opposite end of the stage-skip spectrum from
    // the light-load family cases above: nearly every cycle is active and
    // most stages run, so the skip counters are dominated by the few stages
    // that still idle (e.g. generation between Poisson arrivals).  The
    // counters ride inside the full-struct replicate comparison, but assert
    // them explicitly so a skip-accounting regression names itself.
    for (label, topology, rate, seed) in [
        ("T6 heavy", Arc::new(Torus::new(6)) as Arc<dyn Topology>, 0.030, 1106),
        ("R8 heavy", Arc::new(Ring::new(8)) as Arc<dyn Topology>, 0.024, 1107),
    ] {
        let (t, e) = both(topology, rate, seed, |b| b);
        assert!(!e.deadlock_detected, "{label}");
        for (i, (tr, er)) in t.runs.iter().zip(&e.runs).enumerate() {
            assert_eq!(
                (tr.active_cycles, tr.stage_skips),
                (er.active_cycles, er.stage_skips),
                "{label}: replicate {i} skip counters must match across engines"
            );
            assert!(tr.active_cycles > 0, "{label}: replicate {i} must have active cycles");
            // near saturation the network stays busy: most active cycles
            // run the switching stage, so its skips stay a small fraction
            assert!(
                tr.stage_skips.switching < tr.active_cycles / 2,
                "{label}: replicate {i} should rarely skip switching under heavy load \
                 ({} skips over {} active cycles)",
                tr.stage_skips.switching,
                tr.active_cycles
            );
        }
        assert_identical(label, &t, &e);
    }
}

#[test]
fn engines_agree_on_zero_rate_idle_fast_forward() {
    // Zero traffic: the event engine fast-forwards the entire run without
    // stepping a single cycle, the ticking engine steps every one of them.
    // The active-cycle rule (fully idle cycles count nothing) is what makes
    // the skip counters — and thus the full report — identical anyway.
    for (label, topology) in [
        ("T6 idle", Arc::new(Torus::new(6)) as Arc<dyn Topology>),
        ("R8 idle", Arc::new(Ring::new(8)) as Arc<dyn Topology>),
    ] {
        let (t, e) = both(topology, 0.0, 1108, |b| b.measured_messages(10));
        for (i, (tr, er)) in t.runs.iter().zip(&e.runs).enumerate() {
            assert_eq!(
                (tr.active_cycles, tr.stage_skips),
                (er.active_cycles, er.stage_skips),
                "{label}: replicate {i} skip counters must match across engines"
            );
            assert_eq!(tr.active_cycles, 0, "{label}: an idle run has no active cycles");
            assert_eq!(tr.stage_skips.total(), 0, "{label}: idle cycles must count no skips");
            assert_eq!(tr.measured_messages, 0, "{label}");
        }
        assert_identical(label, &t, &e);
    }
}

/// Event-scheduled injection regression: the exact flit counts the arrival
/// calendar produces, pinned per seed against the legacy per-cycle Poisson
/// polling.  A change to arrival scheduling (the RNG stream, the
/// cycle-rounding predicate, the draw order across nodes) moves these
/// numbers and must be caught, not absorbed.
#[test]
fn injected_flit_counts_per_seed_are_pinned_across_engines() {
    let expected: [(u64, u64, u64); 3] =
        [(2101, 27_762, 501), (2102, 27_186, 500), (2103, 27_540, 500)];
    for (seed, flit_transfers, measured) in expected {
        let single = |core| {
            let topology: Arc<dyn Topology> = Arc::new(StarGraph::new(4));
            let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
            let config = SimConfig::builder()
                .message_length(16)
                .traffic_rate(0.006)
                .warmup_cycles(1_000)
                .measured_messages(500)
                .max_cycles(200_000)
                .seed(seed)
                .core(core)
                .build();
            let run: SimReport =
                ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, 1)
                    .run()
                    .runs
                    .remove(0);
            run
        };
        let ticking = single(SimCore::Ticking);
        let event = single(SimCore::EventDriven);
        assert_eq!(ticking, event, "seed {seed}");
        assert_eq!(
            (event.flit_transfers, event.measured_messages),
            (flit_transfers, measured),
            "seed {seed}: pinned injection/transfer counts moved"
        );
    }
}
