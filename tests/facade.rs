//! Facade-surface test: the `star_wormhole` root re-exports documented in the
//! crate docs must keep resolving, and the root doc example's operating point
//! (`S5`, 9 virtual channels, M = 32 flits, λ_g = 0.005) must keep solving
//! unsaturated.  This is the doctest's contract restated as an integration
//! test, so a regression fails `cargo test` even if doctests are skipped.

use star_wormhole::{
    replicate_seed, AnalyticalModel, CiTarget, ConfigError, DeterministicMinimal, Discipline,
    EnhancedNbc, Evaluator as _, Hypercube, ModelBackend, ModelConfig, ModelParams, ModelResult,
    NHop, Nbc, Permutation, ReplicateStats, Ring, RoutingAlgorithm, RunReport, Scenario,
    SimBackend, SimBudget, SimConfig, SpectrumModel, StarGraph, SweepRunner, SweepSpec, Topology,
    TopologyKind, TopologyProperties, Torus, TrafficPattern, TraversalSpectrum,
};

/// The root doc example, restated: the documented sweep must solve
/// unsaturated with a monotone latency curve.
#[test]
fn root_doc_example_sweep_solves_unsaturated() {
    let scenario = Scenario::star(5).with_virtual_channels(9);
    let sweep = SweepSpec::new("demo", scenario, vec![0.002, 0.004, 0.006]);
    let report = SweepRunner::new().run_one(&ModelBackend::new(), &sweep);
    assert_eq!(report.estimates.len(), 3);
    assert!(report.estimates.iter().all(|e| !e.saturated));
    let curve = report.latency_curve();
    assert!(curve.windows(2).all(|w| w[0] < w[1]));
    // the classic single-point entry keeps working too
    let result: ModelResult = AnalyticalModel::new(
        ModelConfig::builder()
            .symbols(5)
            .virtual_channels(9)
            .message_length(32)
            .traffic_rate(0.005)
            .build(),
    )
    .solve();
    assert!(!result.saturated, "the documented quickstart point must be below saturation");
    assert!(result.mean_latency.is_finite());
    assert!(result.mean_latency > 32.0 + result.mean_distance);
}

/// The unified-evaluator surface re-exported at the root must compose: both
/// backends answer the same scenario type.
#[test]
fn evaluator_reexports_compose() {
    let scenario = Scenario::star(4)
        .with_discipline(Discipline::EnhancedNbc)
        .with_message_length(16)
        .with_pattern(TrafficPattern::Uniform);
    assert_eq!(scenario.network_label(), "S4");
    assert_eq!(scenario, TopologyKind::Star.scenario(4).with_message_length(16));
    let model = ModelBackend::new();
    assert!(model.supports(&scenario));
    let estimate = model.evaluate(&scenario.at(0.003));
    assert!(!estimate.saturated);
    assert_eq!(estimate.latency_ci95(), 0.0, "the model's interval is degenerate");
    let sim = SimBackend::new(SimBudget::Quick).with_ci_target(CiTarget::new(0.2));
    assert!(sim.supports(&Scenario::hypercube(3)));
    // the topology-plugin surface travels through the facade: a torus
    // scenario answered by the generic spectrum model, no closed form
    let torus = Scenario::torus(4).with_message_length(16);
    assert!(model.supports(&torus));
    let params: ModelParams = torus.model_params(0.002).expect("valid pairing").expect("modelled");
    let spectrum = TraversalSpectrum::new(torus.topology().as_ref());
    assert_eq!(spectrum.topology_name(), "T4");
    let result = SpectrumModel::new(params, std::sync::Arc::new(spectrum)).solve();
    assert!(!result.saturated);
    assert_eq!(Torus::new(4).node_count(), 16);
    assert_eq!(Ring::new(8).node_count(), 8);
    // the replicate-statistics surface travels through the facade
    let stats = ReplicateStats::from_samples(&[40.0, 44.0]);
    assert!(stats.ci95 > 0.0);
    assert_ne!(replicate_seed(7, 0), replicate_seed(7, 1));
    assert_eq!(RunReport::csv_header().split(',').count(), 10);
    // non-panicking validation travels through the facade
    let err: ConfigError =
        ModelConfig::builder().symbols(12).try_build().expect_err("S12 is out of model range");
    assert!(err.to_string().contains("S_12"));
}

/// Every module alias documented in the crate root must resolve.
#[test]
fn module_aliases_resolve() {
    assert_eq!(star_wormhole::graph::factorial(5), 120);
    let _ = star_wormhole::queueing::mg1_waiting_time(0.001, 30.0, 30.0);
    let layout = star_wormhole::routing::VirtualChannelLayout { adaptive: 2, escape_levels: 4 };
    assert_eq!(layout.total(), 6);
    let _ = star_wormhole::sim::TrafficPattern::Uniform;
    let _ = star_wormhole::model::RoutingDiscipline::EnhancedNbc;
    let _ = star_wormhole::workloads::SimBudget::Quick;
}

/// The flat re-exports must stay usable together: build every routing
/// algorithm against a topology obtained through the facade.
#[test]
fn flat_reexports_compose() {
    let s4 = StarGraph::new(4);
    let props = TopologyProperties::of(&s4);
    assert_eq!(props.nodes, 24);
    let algorithms: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(EnhancedNbc::for_topology(&s4, 6)),
        Box::new(Nbc::for_topology(&s4, 6)),
        Box::new(NHop::for_topology(&s4, 6)),
        Box::new(DeterministicMinimal::for_topology(&s4, 6)),
    ];
    for algo in &algorithms {
        assert_eq!(algo.virtual_channels(), 6);
    }
    let q5 = Hypercube::at_least(s4.node_count());
    assert!(q5.node_count() >= s4.node_count());
    let p = Permutation::identity(4);
    assert_eq!(p.distance_to_identity(), 0);
    let _ = SimConfig::builder();
    let _ = SimBudget::Quick;
    let _ = TrafficPattern::Uniform;
}
