//! Facade-surface test: the `star_wormhole` root re-exports documented in the
//! crate docs must keep resolving, and the root doc example's operating point
//! (`S5`, 9 virtual channels, M = 32 flits, λ_g = 0.005) must keep solving
//! unsaturated.  This is the doctest's contract restated as an integration
//! test, so a regression fails `cargo test` even if doctests are skipped.

use star_wormhole::{
    AnalyticalModel, DeterministicMinimal, EnhancedNbc, Hypercube, ModelConfig, ModelResult, NHop,
    Nbc, Permutation, RoutingAlgorithm, SimBudget, SimConfig, StarGraph, Topology,
    TopologyProperties, TrafficPattern,
};

/// The root doc example, verbatim: it must solve unsaturated.
#[test]
fn root_doc_example_operating_point_solves_unsaturated() {
    let result: ModelResult = AnalyticalModel::new(
        ModelConfig::builder()
            .symbols(5)
            .virtual_channels(9)
            .message_length(32)
            .traffic_rate(0.005)
            .build(),
    )
    .solve();
    assert!(!result.saturated, "the documented quickstart point must be below saturation");
    // finite and above the zero-load bound M + d̄
    assert!(result.mean_latency.is_finite());
    assert!(result.mean_latency > 32.0 + result.mean_distance);
}

/// Every module alias documented in the crate root must resolve.
#[test]
fn module_aliases_resolve() {
    assert_eq!(star_wormhole::graph::factorial(5), 120);
    let _ = star_wormhole::queueing::mg1_waiting_time(0.001, 30.0, 30.0);
    let layout = star_wormhole::routing::VirtualChannelLayout { adaptive: 2, escape_levels: 4 };
    assert_eq!(layout.total(), 6);
    let _ = star_wormhole::sim::TrafficPattern::Uniform;
    let _ = star_wormhole::model::RoutingDiscipline::EnhancedNbc;
    let _ = star_wormhole::workloads::SimBudget::Quick;
}

/// The flat re-exports must stay usable together: build every routing
/// algorithm against a topology obtained through the facade.
#[test]
fn flat_reexports_compose() {
    let s4 = StarGraph::new(4);
    let props = TopologyProperties::of(&s4);
    assert_eq!(props.nodes, 24);
    let algorithms: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(EnhancedNbc::for_topology(&s4, 6)),
        Box::new(Nbc::for_topology(&s4, 6)),
        Box::new(NHop::for_topology(&s4, 6)),
        Box::new(DeterministicMinimal::for_topology(&s4, 6)),
    ];
    for algo in &algorithms {
        assert_eq!(algo.virtual_channels(), 6);
    }
    let q5 = Hypercube::at_least(s4.node_count());
    assert!(q5.node_count() >= s4.node_count());
    let p = Permutation::identity(4);
    assert_eq!(p.distance_to_identity(), 0);
    let _ = SimConfig::builder();
    let _ = SimBudget::Quick;
    let _ = TrafficPattern::Uniform;
}
