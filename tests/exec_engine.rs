//! Integration tests for the unified execution engine: the persistent
//! [`ExecPool`] behind all three parallel paths (sweep runner, blocking
//! sums, spectrum build), panic propagation through the pool, and the
//! cross-process shard/merge round trip.

use star_wormhole::exec::shard::{partial_header, partial_rows};
use star_wormhole::exec::spawn_ordered;
use star_wormhole::model::blocking::{batch_blocking_delays, total_blocking_delay, VcSplit};
use star_wormhole::model::occupancy::ChannelOccupancy;
use star_wormhole::model::DestinationSpectrum;
use star_wormhole::workloads::{rate_indices, retain_shard};
use star_wormhole::{
    merge_shard_csvs, shard_sweeps, ExecPool, ModelBackend, ReportSink, Scenario, ShardSpec,
    SimBackend, SimBudget, SweepRunner, SweepSpec,
};

/// The three refactored parallel paths must stay byte-identical between a
/// single worker and many pool workers.
#[test]
fn pool_determinism_across_all_three_parallel_paths() {
    // 1. SweepRunner: (point × replicate) sharding over the pool
    let sweep = SweepSpec::new(
        "s4",
        Scenario::star(4).with_message_length(16).with_replicates(3).with_seed_base(11),
        vec![0.003, 0.005],
    );
    let sim = SimBackend::new(SimBudget::Quick);
    let one = SweepRunner::with_threads(1).run_one(&sim, &sweep);
    for threads in [0usize, 2, 7] {
        let many = SweepRunner::with_threads(threads).run_one(&sim, &sweep);
        assert_eq!(one, many, "SweepRunner, threads = {threads}");
    }

    // 2. blocking sums: the per-iteration batch behind with_parallelism
    let spectrum = DestinationSpectrum::new(5);
    let profiles: Vec<_> = spectrum.classes().iter().map(|c| &c.profile).collect();
    let split = VcSplit { adaptive: 2, escape_levels: 4, bonus_cards: true };
    let occupancy = ChannelOccupancy::new(0.006, 60.0, 6);
    let serial = batch_blocking_delays(split, &occupancy, &profiles, 12.0, 1);
    for threads in [0usize, 2, 5] {
        let pooled = batch_blocking_delays(split, &occupancy, &profiles, 12.0, threads);
        assert_eq!(serial, pooled, "blocking sums, threads = {threads}");
    }
    // …and the pool agrees with the spawn-per-call baseline it replaced
    let spawned = spawn_ordered(3, &profiles, |_, profile| {
        total_blocking_delay(split, &occupancy, profile, 12.0)
    });
    assert_eq!(serial, spawned);

    // 3. spectrum build: per-cycle-type path-DAG construction
    let reference = DestinationSpectrum::new(6);
    for threads in [0usize, 3] {
        let pooled = DestinationSpectrum::with_threads(6, threads);
        assert_eq!(reference.classes().len(), pooled.classes().len());
        for (a, b) in reference.classes().iter().zip(pooled.classes()) {
            assert_eq!(a.cycle_type, b.cycle_type, "spectrum, threads = {threads}");
            assert_eq!(a.profile.hop_adaptivity, b.profile.hop_adaptivity);
        }
    }
}

/// A panic inside a pool-executed work item must reach the caller (and
/// leave the global pool healthy for the rest of the process).
#[test]
fn panic_in_pool_worker_propagates() {
    let items: Vec<usize> = (0..24).collect();
    let result = std::panic::catch_unwind(|| {
        ExecPool::global().run_ordered(4, &items, |_, &i| {
            assert!(i != 13, "replicate 13 diverged");
            i * 2
        })
    });
    assert!(result.is_err(), "the pool must re-throw the work-item panic");
    // the pool still serves batches afterwards
    let doubled = ExecPool::global().run_ordered(4, &items, |_, &i| i * 2);
    assert_eq!(doubled[23], 46);
}

/// The evaluator-level panic contract survives the pool refactor: an
/// unsupported scenario is still rejected with the pre-existing message.
#[test]
fn evaluator_panics_cross_the_pool_boundary() {
    let sweep = SweepSpec::new(
        "nhop-v3",
        Scenario::star(4).with_message_length(16).with_virtual_channels(3),
        vec![0.001],
    );
    // AssertUnwindSafe: the sweep is only read, and the panic fires before
    // any state it owns could be half-mutated
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // V = 3 < the 4 escape levels S4 needs: supports() is false, the
        // runner's up-front check panics before any pool work starts
        SweepRunner::with_threads(2).run_one(&ModelBackend::new(), &sweep)
    }));
    assert!(result.is_err());
}

/// Three `--shard K/N` runs of the same two-pass workload must merge into
/// the exact bytes of the unsharded run — the acceptance contract of
/// cross-process sharding.
#[test]
fn three_way_shard_merge_is_byte_identical() {
    let scenario = Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(9);
    let full = vec![
        SweepSpec::new("s4", scenario.clone(), vec![0.002, 0.003, 0.004]),
        SweepSpec::new("s4v9", scenario.with_virtual_channels(9), vec![0.002, 0.003, 0.004]),
    ];
    let runner = SweepRunner::with_threads(2);
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    let dir = std::env::temp_dir().join("star-exec-engine-roundtrip");

    let mut unsharded = ReportSink::new(None);
    unsharded.extend_pass(&full, &runner.run_pass(&model, None, &full));
    unsharded.extend_pass(&full, &runner.run_pass(&sim, None, &full));
    let reference_path = unsharded.write_csv(&dir, "engine").unwrap();
    let reference = std::fs::read_to_string(reference_path).unwrap();
    assert_eq!(reference.lines().count(), 1 + 12, "2 passes × 2 sweeps × 3 rates");

    let partials: Vec<String> = (1..=3)
        .map(|k| {
            let shard = ShardSpec::parse(&format!("{k}/3")).unwrap();
            let mut sink = ReportSink::new(Some(shard));
            sink.extend_pass(&full, &runner.run_pass(&model, Some(shard), &full));
            sink.extend_pass(&full, &runner.run_pass(&sim, Some(shard), &full));
            let path = sink.write_csv(&dir, "engine").unwrap();
            std::fs::read_to_string(path).unwrap()
        })
        .collect();
    // the shards really divided the simulated work: each partial carries
    // only its slice of the rows
    for partial in &partials {
        assert!(partial.lines().count() < reference.lines().count());
    }
    let merged = merge_shard_csvs(&partials).unwrap();
    assert_eq!(merged, reference, "merged shards must equal the unsharded CSV byte for byte");
    std::fs::remove_dir_all(&dir).ok();
}

/// An incomplete, duplicated or cross-run shard set must fail the merge
/// loudly.
#[test]
fn merge_rejects_missing_duplicate_and_foreign_shards() {
    let fingerprint = |tag: &str| {
        let mut fp = star_wormhole::exec::shard::RunFingerprint::new();
        fp.add_str(tag);
        fp
    };
    let header = partial_header("a,b", fingerprint("this run"));
    let shard = |rows: &[(usize, String)]| format!("{header}\n{}\n", partial_rows(rows).join("\n"));
    let first = shard(&[(0, "1,x".into())]);
    let third = shard(&[(2, "3,z".into())]);
    assert!(merge_shard_csvs(&[first.clone(), third]).is_err(), "gap must be rejected");
    assert!(merge_shard_csvs(&[first.clone(), first.clone()]).is_err(), "duplicate rejected");
    // complementary indices and the same schema, but a different run
    let foreign = format!(
        "{}\n{}\n",
        partial_header("a,b", fingerprint("another run")),
        partial_rows(&[(1, "2,y".into())]).join("\n")
    );
    assert!(merge_shard_csvs(&[first, foreign]).is_err(), "cross-run mix must be rejected");
}

/// The chain-respecting pass slicer: chaining backends recompute the full
/// warm chain and keep a slice; independent backends skip unowned points.
#[test]
fn run_pass_respects_backend_granularity() {
    let full = vec![SweepSpec::new(
        "s4",
        Scenario::star(4).with_message_length(16).with_seed_base(3),
        vec![0.002, 0.004, 0.006, 0.008],
    )];
    let runner = SweepRunner::with_threads(2);
    let shard = ShardSpec::parse("1/2").unwrap();

    // warm-started model: values must equal the unsharded chain's exactly
    let model = ModelBackend::new();
    let reference = runner.run_pass(&model, None, &full);
    let sliced = runner.run_pass(&model, Some(shard), &full);
    assert_eq!(sliced[0].estimates.len(), 2, "shard 1/2 owns flat points 0 and 2");
    let indices = rate_indices(&full[0].rates, &sliced[0]);
    assert_eq!(indices, vec![0, 2]);
    for (estimate, ri) in sliced[0].estimates.iter().zip(indices) {
        assert_eq!(estimate, &reference[0].estimates[ri], "full-chain value expected");
    }

    // retain_shard is the filter run_pass applies for chaining backends
    let mut retained = reference.clone();
    retain_shard(shard, &mut retained);
    assert_eq!(retained[0].estimates, sliced[0].estimates);

    // independent sim backend: the sharded pass evaluates exactly the
    // owned points, and they match the unsharded run's values
    let sim = SimBackend::new(SimBudget::Quick);
    let sim_reference = runner.run_pass(&sim, None, &full);
    let sim_sliced = runner.run_pass(&sim, Some(shard), &full);
    assert_eq!(sim_sliced[0].estimates.len(), 2);
    for (estimate, ri) in
        sim_sliced[0].estimates.iter().zip(rate_indices(&full[0].rates, &sim_sliced[0]))
    {
        assert_eq!(estimate, &sim_reference[0].estimates[ri]);
    }
    // …and shard_sweeps is the slicer it used
    let sharded_specs = shard_sweeps(shard, &full);
    assert_eq!(sharded_specs[0].rates, vec![0.002, 0.006]);
}
