//! Deadlock-freedom stress tests: every routing algorithm in the workspace
//! must keep delivering messages even when driven beyond saturation, because
//! the negative-hop / bonus-card virtual-channel disciplines guarantee the
//! channel dependency graph stays acyclic.  The simulator's watchdog flags a
//! deadlock if no flit moves for a long stretch while messages are in flight.

use std::sync::Arc;

use star_wormhole::{
    DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm, SimConfig, Simulation,
    StarGraph, TrafficPattern,
};

fn stress(routing: Arc<dyn RoutingAlgorithm>, rate: f64, seed: u64) -> star_wormhole::SimReport {
    let topology = Arc::new(StarGraph::new(4));
    let config = SimConfig::builder()
        .message_length(24)
        .traffic_rate(rate)
        .warmup_cycles(1_000)
        .measured_messages(3_000)
        .max_cycles(120_000)
        .saturation_queue_limit(10_000) // let queues grow: we want the network congested
        .seed(seed)
        .build();
    Simulation::new(topology, routing, config, TrafficPattern::Uniform).run()
}

#[test]
fn enhanced_nbc_survives_overload() {
    let topology = StarGraph::new(4);
    for &v in &[5usize, 6, 9] {
        let report = stress(Arc::new(EnhancedNbc::for_topology(&topology, v)), 0.08, 1);
        assert!(!report.deadlock_detected, "Enhanced-Nbc V={v} deadlocked");
        assert!(report.measured_messages > 0, "traffic must keep flowing under overload");
    }
}

#[test]
fn nbc_and_nhop_survive_overload() {
    let topology = StarGraph::new(4);
    for (name, routing) in [
        ("Nbc", Arc::new(Nbc::for_topology(&topology, 6)) as Arc<dyn RoutingAlgorithm>),
        ("NHop", Arc::new(NHop::for_topology(&topology, 6))),
    ] {
        let report = stress(routing, 0.08, 2);
        assert!(!report.deadlock_detected, "{name} deadlocked");
        assert!(report.measured_messages > 0);
    }
}

#[test]
fn deterministic_baseline_survives_overload() {
    let topology = StarGraph::new(4);
    let report = stress(Arc::new(DeterministicMinimal::for_topology(&topology, 6)), 0.08, 3);
    assert!(!report.deadlock_detected);
    assert!(report.measured_messages > 0);
}

#[test]
fn hotspot_traffic_does_not_deadlock() {
    let topology = Arc::new(StarGraph::new(4));
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
    let config = SimConfig::builder()
        .message_length(24)
        .traffic_rate(0.05)
        .warmup_cycles(1_000)
        .measured_messages(2_000)
        .max_cycles(120_000)
        .saturation_queue_limit(10_000)
        .seed(4)
        .build();
    let report = Simulation::new(
        topology,
        routing,
        config,
        TrafficPattern::HotSpot { node: 5, fraction: 0.5 },
    )
    .run();
    assert!(!report.deadlock_detected);
    assert!(report.measured_messages > 0);
}

#[test]
fn minimum_virtual_channel_configuration_is_deadlock_free_on_s5() {
    // S5 needs 4 escape levels; V = 5 is the minimum legal Enhanced-Nbc
    // configuration and the most constrained one, so it is the most likely to
    // expose an ordering bug in the escape discipline.
    let topology = Arc::new(StarGraph::new(5));
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
    let config = SimConfig::builder()
        .message_length(16)
        .traffic_rate(0.02)
        .warmup_cycles(1_000)
        .measured_messages(3_000)
        .max_cycles(100_000)
        .saturation_queue_limit(10_000)
        .seed(5)
        .build();
    let report = Simulation::new(topology, routing, config, TrafficPattern::Uniform).run();
    assert!(!report.deadlock_detected);
    assert!(report.measured_messages > 0);
}
