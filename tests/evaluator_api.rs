//! Integration tests for the unified evaluation API: warm-started sweeps
//! must reproduce cold-started sweeps (while spending fewer fixed-point
//! iterations near the saturation knee), the `SweepRunner` must produce
//! byte-identical reports for any thread count, for both backends and any
//! replicate fan-out, and the seed → replicate derivation must be stable
//! across runs.

use star_wormhole::model::{sweep_traffic, sweep_traffic_cold};
use star_wormhole::{
    replicate_seed, Evaluator as _, ModelBackend, ModelConfig, Scenario, SimBackend, SimBudget,
    SweepRunner, SweepSpec,
};

/// The acceptance sweep: the paper's `S5`, `V = 6`, `M = 32` curve sampled
/// densely up through the saturation knee (the model saturates near
/// `λ_g ≈ 0.0155` for this configuration).
fn s5_rates() -> Vec<f64> {
    (1..=34).map(|i| 0.0005 * i as f64).collect()
}

fn s5_scenario() -> Scenario {
    Scenario::star(5).with_virtual_channels(6).with_message_length(32)
}

#[test]
fn warm_started_sweep_matches_cold_start_point_for_point() {
    let config = ModelConfig::builder().symbols(5).virtual_channels(6).message_length(32).build();
    let rates = s5_rates();
    let warm = sweep_traffic(config, &rates);
    let cold = sweep_traffic_cold(config, &rates);
    assert_eq!(warm.len(), cold.len());
    let mut compared = 0;
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(
            w.result.saturated, c.result.saturated,
            "warm and cold must agree on saturation at rate {}",
            w.traffic_rate
        );
        if !w.result.saturated {
            let rel = (w.result.mean_latency - c.result.mean_latency).abs() / c.result.mean_latency;
            assert!(
                rel < 1e-9,
                "rate {}: warm {} vs cold {} differ by {rel}",
                w.traffic_rate,
                w.result.mean_latency,
                c.result.mean_latency
            );
            compared += 1;
        }
    }
    assert!(compared >= 10, "the sweep must compare a real span below saturation");
    assert!(warm.iter().any(|p| p.result.saturated), "the sweep must reach the knee");
}

#[test]
fn warm_start_spends_strictly_fewer_iterations_near_the_knee() {
    let config = ModelConfig::builder().symbols(5).virtual_channels(6).message_length(32).build();
    let rates = s5_rates();
    let warm = sweep_traffic(config, &rates);
    let cold = sweep_traffic_cold(config, &rates);
    let warm_total: usize = warm.iter().map(|p| p.result.iterations).sum();
    let cold_total: usize = cold.iter().map(|p| p.result.iterations).sum();
    assert!(
        warm_total < cold_total,
        "warm-started sweep must spend fewer total iterations ({warm_total} vs {cold_total})"
    );
    // near the knee (the last unsaturated points) every warm solve must be
    // strictly cheaper than its cold counterpart
    let knee: Vec<(usize, usize)> = warm
        .iter()
        .zip(&cold)
        .filter(|(w, _)| !w.result.saturated)
        .map(|(w, c)| (w.result.iterations, c.result.iterations))
        .collect();
    let tail = &knee[knee.len().saturating_sub(3)..];
    for &(w_iters, c_iters) in tail {
        assert!(
            w_iters < c_iters,
            "near the knee warm start must win ({w_iters} vs {c_iters} iterations)"
        );
    }
}

#[test]
fn model_backend_through_the_runner_matches_the_core_sweep() {
    let sweep = SweepSpec::new("fig1a-M32", s5_scenario(), s5_rates());
    let report = SweepRunner::with_threads(2).run_one(&ModelBackend::new(), &sweep);
    let config = ModelConfig::builder().symbols(5).virtual_channels(6).message_length(32).build();
    let core = sweep_traffic(config, &s5_rates());
    assert_eq!(report.estimates.len(), core.len());
    for (est, point) in report.estimates.iter().zip(&core) {
        assert_eq!(est.saturated, point.result.saturated);
        if !est.saturated {
            assert!((est.mean_latency - point.result.mean_latency).abs() < 1e-12);
        }
    }
}

#[test]
fn model_sharding_is_deterministic_across_thread_counts() {
    // several independent curves so multiple workers actually get work
    let sweeps: Vec<SweepSpec> = [6usize, 9, 12]
        .iter()
        .map(|&v| {
            SweepSpec::new(
                format!("V={v}"),
                s5_scenario().with_virtual_channels(v),
                (1..=10).map(|i| 0.0012 * i as f64).collect(),
            )
        })
        .collect();
    let backend = ModelBackend::new();
    let serial = SweepRunner::with_threads(1).run(&backend, &sweeps);
    let sharded = SweepRunner::with_threads(4).run(&backend, &sweeps);
    let oversubscribed = SweepRunner::with_threads(17).run(&backend, &sweeps);
    assert_eq!(serial, sharded);
    assert_eq!(serial, oversubscribed);
    assert_eq!(
        format!("{serial:?}"),
        format!("{sharded:?}"),
        "reports must be byte-identical for any thread count"
    );
}

#[test]
fn sim_sharding_is_deterministic_across_thread_counts() {
    // a small network so the flit-level runs stay quick; two curves so the
    // point-granularity sharding has four independent units to scatter
    for seed_base in [1u64, 2] {
        let sweeps: Vec<SweepSpec> = [16usize, 24]
            .iter()
            .map(|&m| {
                SweepSpec::new(
                    format!("M{m}"),
                    Scenario::star(4).with_message_length(m).with_seed_base(seed_base),
                    vec![0.003, 0.006],
                )
            })
            .collect();
        let backend = SimBackend::new(SimBudget::Quick);
        let serial = SweepRunner::with_threads(1).run(&backend, &sweeps);
        let sharded = SweepRunner::with_threads(4).run(&backend, &sweeps);
        assert_eq!(serial, sharded);
        assert_eq!(
            format!("{serial:?}"),
            format!("{sharded:?}"),
            "sim reports must be byte-identical for any thread count (seed base {seed_base})"
        );
    }
}

#[test]
fn replicate_aggregation_is_byte_identical_for_one_vs_many_threads() {
    // the tentpole contract: R replicates per point are sharded as
    // independent (point × replicate) work items, and any thread count —
    // undersubscribed, matched, oversubscribed — reassembles them into the
    // same bytes the sequential evaluation produces
    let scenario = Scenario::star(4).with_message_length(16).with_replicates(3).with_seed_base(41);
    let sweep = SweepSpec::new("r3", scenario.clone(), vec![0.003, 0.006]);
    let backend = SimBackend::new(SimBudget::Quick);
    let sequential: Vec<_> =
        sweep.rates.iter().map(|&rate| backend.evaluate(&scenario.at(rate))).collect();
    for threads in [1usize, 2, 4, 9] {
        let report = SweepRunner::with_threads(threads).run_one(&backend, &sweep);
        assert_eq!(report.estimates, sequential, "threads = {threads}");
        assert_eq!(
            format!("{:?}", report.estimates),
            format!("{sequential:?}"),
            "replicate aggregation must be byte-identical (threads = {threads})"
        );
        for estimate in &report.estimates {
            assert_eq!(estimate.replicates(), 3);
            assert!(estimate.latency_ci95() > 0.0, "3 seeds must yield a real interval");
        }
    }
}

#[test]
fn seed_to_replicate_derivation_is_stable_across_runs() {
    // the derivation is pure: recomputing yields the same seeds, and the
    // per-replicate simulations they drive reproduce bit for bit
    for base in [0u64, 41, u64::MAX] {
        for replicate in 0..4 {
            assert_eq!(replicate_seed(base, replicate), replicate_seed(base, replicate));
        }
    }
    let backend = SimBackend::new(SimBudget::Quick);
    let point = Scenario::star(4).with_message_length(16).with_seed_base(41).at(0.003);
    let first = backend.evaluate_replicate(&point, 1);
    let again = backend.evaluate_replicate(&point, 1);
    assert_eq!(first, again, "replicate 1 must be the same simulation every run");
    let other = backend.evaluate_replicate(&point, 2);
    assert_ne!(
        first.mean_latency, other.mean_latency,
        "different replicate indices must drive different RNG streams"
    );
    // the derived seeds are what lands in the per-replicate reports
    let report = first.sim_report().unwrap();
    assert_eq!(report.runs.len(), 1);
}

#[test]
fn both_backends_answer_the_same_point_within_tolerance() {
    // the backend-swap contract: one operating point, two backends, one
    // answer within the validation tolerance used throughout the paper; the
    // simulated side is a replicate mean with its CI in the failure message
    let scenario = Scenario::star(4).with_message_length(16).with_replicates(3).with_seed_base(101);
    let model = SweepRunner::with_threads(1)
        .run_one(&ModelBackend::new(), &SweepSpec::new("m", scenario.clone(), vec![0.004]));
    let sim = SweepRunner::with_threads(1)
        .run_one(&SimBackend::new(SimBudget::Quick), &SweepSpec::new("s", scenario, vec![0.004]));
    let m = &model.estimates[0];
    let s = &sim.estimates[0];
    assert!(!m.saturated && !s.saturated);
    let err = (m.mean_latency - s.mean_latency).abs() / s.mean_latency;
    assert!(
        err < 0.15,
        "model {} vs sim {} (over {} replicates) differ by {err}",
        m.mean_latency,
        s.latency_stats.pretty(),
        s.replicates()
    );
}
