//! Cross-validation of the analytical hypercube model against the flit-level
//! simulator at small sizes (`Q4`–`Q6`, plus light-load spot checks at `Q8`
//! and `Q10` on the event engine), mirroring `tests/model_vs_sim.rs`
//! for the star graph: the same operating point answered by both backends
//! must agree within the star validation's tolerance band (10% at light
//! load, 25% at moderate load), for both the adaptive scheme and the
//! dimension-order baseline.

use star_wormhole::{
    Discipline, Evaluator as _, ModelBackend, PointEstimate, Scenario, SimBackend, SimBudget,
    SweepRunner, SweepSpec,
};

/// A `Q_d` scenario with short messages so the simulated points stay fast in
/// a debug test run (single replicate — the star-side validation exercises
/// the replicate-mean path).
fn cube(dims: usize, discipline: Discipline) -> Scenario {
    Scenario::hypercube(dims).with_message_length(16).with_discipline(discipline)
}

/// The generation rate that targets channel utilisation `u` on the scenario's
/// topology (`λ_g = u·degree/(d̄·M)`).
fn rate_at_utilisation(scenario: &Scenario, u: f64) -> f64 {
    let topology = scenario.topology();
    u * topology.degree() as f64 / (topology.mean_distance() * scenario.message_length as f64)
}

fn relative_error(model: &PointEstimate, sim: &PointEstimate) -> f64 {
    (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency
}

#[test]
fn model_matches_simulation_at_light_load_q4_to_q6() {
    // ~3% channel utilisation, the regime the star light-load validation
    // runs in (S4 at λ_g = 0.003), held to the same 10% band
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    for dims in 4..=6 {
        let scenario = cube(dims, Discipline::EnhancedNbc).with_seed_base(401);
        let point = scenario.at(rate_at_utilisation(&scenario, 0.03));
        let m = model.evaluate(&point);
        let s = sim.evaluate(&point);
        assert!(!m.saturated && !s.saturated, "Q{dims} must not saturate at light load");
        let err = relative_error(&m, &s);
        assert!(
            err < 0.10,
            "Q{dims} light load: model {} vs sim {} ({:.1}%)",
            m.mean_latency,
            s.mean_latency,
            err * 100.0
        );
    }
}

#[test]
fn model_tracks_simulation_at_light_load_q8_on_the_event_engine() {
    // One size class above the historical Q4–Q6 ceiling, affordable in a
    // debug run now that the event-driven engine (the default core) only
    // pays for active channels.  The closed form's fixed per-hop overhead
    // compounds with the dimension, so at d = 8 the model sits a systematic
    // ~12% above the simulator even as load → 0 (seed-independent); the band
    // is 15% to document that accuracy, not the 10% the small cubes hold.
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    let scenario = cube(8, Discipline::EnhancedNbc).with_seed_base(801);
    let point = scenario.at(rate_at_utilisation(&scenario, 0.03));
    let m = model.evaluate(&point);
    let s = sim.evaluate(&point);
    assert!(!m.saturated && !s.saturated, "Q8 must not saturate at light load");
    let err = relative_error(&m, &s);
    assert!(
        err < 0.15,
        "Q8 light load: model {} vs sim {} ({:.1}%)",
        m.mean_latency,
        s.mean_latency,
        err * 100.0
    );
}

#[test]
fn model_tracks_simulation_at_light_load_q10_on_the_event_engine() {
    // The largest cube the debug test budget affords (1,024 nodes), reachable
    // only because the event engine's dense active sets and stage skipping
    // keep the per-cycle cost proportional to live work.  Q10's diameter
    // requires ⌊10/2⌋ + 1 = 6 escape levels, so V = 7 keeps the default's
    // shape of exactly one adaptive channel.  The model's fixed per-hop
    // overhead holds the same systematic ~12% overestimate here as at d = 8
    // (11.8% observed, seed-independent), so the same 15% band documents the
    // d = 10 accuracy.
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    let scenario = cube(10, Discipline::EnhancedNbc).with_virtual_channels(7).with_seed_base(1001);
    let point = scenario.at(rate_at_utilisation(&scenario, 0.03));
    let m = model.evaluate(&point);
    let s = sim.evaluate(&point);
    assert!(!m.saturated && !s.saturated, "Q10 must not saturate at light load");
    let err = relative_error(&m, &s);
    assert!(
        err < 0.15,
        "Q10 light load: model {} vs sim {} ({:.1}%)",
        m.mean_latency,
        s.mean_latency,
        err * 100.0
    );
}

#[test]
fn model_matches_simulation_at_moderate_load_q4_to_q6_both_routings() {
    // ~10% channel utilisation, matching the star moderate-load validation's
    // regime and 25% band — for the adaptive scheme *and* the dimension-order
    // baseline (which the star model does not even cover)
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    for dims in 4..=6 {
        for discipline in [Discipline::EnhancedNbc, Discipline::Deterministic] {
            let scenario = cube(dims, discipline).with_seed_base(402);
            let point = scenario.at(rate_at_utilisation(&scenario, 0.10));
            let m = model.evaluate(&point);
            let s = sim.evaluate(&point);
            assert!(!m.saturated && !s.saturated, "Q{dims}/{discipline:?} must not saturate");
            let err = relative_error(&m, &s);
            assert!(
                err < 0.25,
                "Q{dims}/{discipline:?} moderate load: model {} vs sim {} ({:.1}%)",
                m.mean_latency,
                s.mean_latency,
                err * 100.0
            );
        }
    }
}

#[test]
fn both_backends_show_latency_growth_with_load_on_the_cube() {
    let model = ModelBackend::new();
    let sim = SimBackend::new(SimBudget::Quick);
    let scenario = cube(5, Discipline::EnhancedNbc).with_seed_base(403);
    let mut last_model = 0.0;
    let mut last_sim = 0.0;
    for u in [0.10, 0.25, 0.40] {
        let point = scenario.at(rate_at_utilisation(&scenario, u));
        let m = model.evaluate(&point);
        let s = sim.evaluate(&point);
        assert!(!m.saturated && !s.saturated, "utilisation {u} unexpectedly saturated");
        assert!(m.mean_latency > last_model);
        assert!(s.mean_latency > last_sim);
        last_model = m.mean_latency;
        last_sim = s.mean_latency;
    }
}

#[test]
fn warm_started_hypercube_sweep_equals_cold_start() {
    // the warm-start contract carried over from the star path: same fixed
    // points (to solver tolerance), strictly fewer total iterations
    let scenario = cube(6, Discipline::EnhancedNbc);
    let rates: Vec<f64> =
        (1..=8).map(|i| rate_at_utilisation(&scenario, 0.08 * i as f64)).collect();
    let spec = SweepSpec::new("q6", scenario, rates);
    let runner = SweepRunner::with_threads(1);
    let warm = runner.run_one(&ModelBackend::new(), &spec);
    let cold = runner.run_one(&ModelBackend::cold(), &spec);
    let mut warm_iterations = 0;
    let mut cold_iterations = 0;
    for (w, c) in warm.estimates.iter().zip(&cold.estimates) {
        assert_eq!(w.saturated, c.saturated);
        if !w.saturated {
            let rel = (w.mean_latency - c.mean_latency).abs() / c.mean_latency;
            assert!(rel < 1e-9, "warm/cold fixed points differ by {rel}");
        }
        warm_iterations += w.iterations().unwrap();
        cold_iterations += c.iterations().unwrap();
    }
    assert!(
        warm_iterations < cold_iterations,
        "warm-started sweep must use fewer iterations ({warm_iterations} vs {cold_iterations})"
    );
}
