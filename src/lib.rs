//! # star-wormhole
//!
//! Facade crate for the star-wormhole workspace: a Rust reproduction of
//! *Analytical Performance Modelling of Adaptive Wormhole Routing in the Star
//! Interconnection Network* (Kiasari, Sarbazi-Azad & Ould-Khaoua, IPDPS 2006).
//!
//! The workspace contains:
//!
//! * [`exec`] (crate `star-exec`) — the shared execution layer: the
//!   persistent deterministic [`ExecPool`] behind every parallel path
//!   (sweep sharding, the models' per-iteration blocking sums, the
//!   spectrum build) and the `--shard K/N` cross-process shard/merge
//!   machinery ([`ShardSpec`], `merge_shard_csvs`);
//! * [`graph`] (crate `star-graph`) — the [`Topology`] trait with its star
//!   graph `S_n`, hypercube `Q_d`, torus `T_k` and ring implementations,
//!   permutations, minimal-path DAGs, distance distributions;
//! * [`queueing`] (crate `star-queueing`) — M/G/1 waiting times, the virtual
//!   channel occupancy chain, fixed-point solvers and statistics;
//! * [`routing`] (crate `star-routing`) — the NHop, Nbc, Enhanced-Nbc and
//!   deterministic wormhole routing algorithms;
//! * [`sim`] (crate `star-sim`) — the cycle-accurate flit-level wormhole
//!   simulator used to validate the model;
//! * [`model`] (crate `star-core`) — **the paper's contribution**: the
//!   analytical latency model and its traffic sweeps, extended to the
//!   binary hypercube (`HypercubeModel`) so the star-vs-hypercube
//!   comparison runs model-only far beyond simulator scale, plus the
//!   generic [`TraversalSpectrum`]/[`SpectrumModel`] pair that evaluates
//!   the same model on **any** [`Topology`] value from a BFS distance
//!   census (the closed forms remain as exact oracles);
//! * [`serve`] (crate `star-serve`) — the persistent evaluation daemon:
//!   a line-delimited-JSON TCP server answering scenario queries from a
//!   two-level cache (fingerprint-keyed topology/spectrum sharing plus an
//!   LRU solve cache that warm-starts rate-adjacent queries), byte-identical
//!   in `exact` mode to a batch [`ModelBackend`] solve (see
//!   `REPRODUCING.md`'s *Serving mode* and the `star-serve` / `star-load`
//!   binaries);
//! * [`workloads`] (crate `star-workloads`) — the unified evaluation API:
//!   [`Scenario`]s carrying their topology as an `Arc<dyn Topology>` value
//!   (including the `replicates` ×
//!   `seed_base` replication policy), the [`Evaluator`] trait answered by
//!   both the analytical model ([`ModelBackend`]) and the simulator
//!   ([`SimBackend`], fanning each point out to independently seeded
//!   replicates with Student-t 95% confidence intervals), and the
//!   multi-threaded [`SweepRunner`] that shards (point × replicate) work
//!   items.
//!
//! The core workflow — answering the same operating points with swappable
//! backends — looks like this:
//!
//! ```
//! use star_wormhole::{ModelBackend, Scenario, SweepRunner, SweepSpec};
//!
//! // S5 (120 nodes), Enhanced-Nbc, V = 9 virtual channels, M = 32 flits,
//! // swept over three traffic generation rates.
//! let scenario = Scenario::star(5).with_virtual_channels(9);
//! let sweep = SweepSpec::new("demo", scenario, vec![0.002, 0.004, 0.006]);
//!
//! // The model backend warm-starts each rate from the previous rate's
//! // converged fixed point; swap in `SimBackend::new(..)` (plus
//! // `.with_replicates(R)` on the scenario for a mean ± 95% CI per point)
//! // to answer the same sweep with the flit-level simulator.
//! let report = SweepRunner::new().run_one(&ModelBackend::new(), &sweep);
//! assert_eq!(report.estimates.len(), 3);
//! assert!(report.estimates.iter().all(|e| !e.saturated));
//! // latency grows with load
//! let curve = report.latency_curve();
//! assert!(curve.windows(2).all(|w| w[0] < w[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use star_core as model;
pub use star_exec as exec;
pub use star_graph as graph;
pub use star_queueing as queueing;
pub use star_routing as routing;
pub use star_serve as serve;
pub use star_sim as sim;
pub use star_workloads as workloads;

pub use star_core::{
    spectrum_saturation_rate, AnalyticalModel, ConfigError, HypercubeConfig, HypercubeConfigError,
    HypercubeModel, HypercubeResult, HypercubeRouting, HypercubeSpectrum, ModelConfig,
    ModelDiscipline, ModelParams, ModelParamsError, ModelResult, RoutingDiscipline, SpectrumModel,
    SpectrumResult, TraversalSpectrum, ValidationRow,
};
pub use star_exec::{merge_shard_csvs, ExecPool, ShardSpec};
pub use star_graph::{
    Hypercube, Permutation, Ring, StarGraph, Topology, TopologyProperties, Torus,
};
pub use star_queueing::{replicate_seed, ReplicateStats};
pub use star_routing::{DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm};
pub use star_serve::{Daemon, ServeConfig};
pub use star_sim::{
    ReplicateReport, ReplicateRun, SimConfig, SimCore, SimReport, Simulation, TrafficPattern,
};
#[allow(deprecated)]
pub use star_workloads::NetworkKind;
pub use star_workloads::{
    default_config_pool, encode_estimate, load_rate_grid, scenario_fingerprint, shard_sweeps,
    CiTarget, Discipline, EstimateDetail, Evaluator, ModelBackend, OperatingPoint, PointEstimate,
    ReportSink, RunReport, RunRow, Scenario, SimBackend, SimBudget, SweepReport, SweepRunner,
    SweepSpec, TopologyKind, WireScenario,
};
