//! # star-wormhole
//!
//! Facade crate for the star-wormhole workspace: a Rust reproduction of
//! *Analytical Performance Modelling of Adaptive Wormhole Routing in the Star
//! Interconnection Network* (Kiasari, Sarbazi-Azad & Ould-Khaoua, IPDPS 2006).
//!
//! The workspace contains:
//!
//! * [`graph`] (crate `star-graph`) — the star graph `S_n` and hypercube
//!   `Q_d` topologies, permutations, minimal-path DAGs, distance
//!   distributions;
//! * [`queueing`] (crate `star-queueing`) — M/G/1 waiting times, the virtual
//!   channel occupancy chain, fixed-point solvers and statistics;
//! * [`routing`] (crate `star-routing`) — the NHop, Nbc, Enhanced-Nbc and
//!   deterministic wormhole routing algorithms;
//! * [`sim`] (crate `star-sim`) — the cycle-accurate flit-level wormhole
//!   simulator used to validate the model;
//! * [`model`] (crate `star-core`) — **the paper's contribution**: the
//!   analytical latency model and its traffic sweeps;
//! * [`workloads`] (crate `star-workloads`) — the Figure-1 experiment
//!   definitions, simulation budgets and report emitters.
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use star_wormhole::{AnalyticalModel, ModelConfig};
//!
//! let result = AnalyticalModel::new(
//!     ModelConfig::builder()
//!         .symbols(5)
//!         .virtual_channels(9)
//!         .message_length(32)
//!         .traffic_rate(0.005)
//!         .build(),
//! )
//! .solve();
//! assert!(!result.saturated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use star_core as model;
pub use star_graph as graph;
pub use star_queueing as queueing;
pub use star_routing as routing;
pub use star_sim as sim;
pub use star_workloads as workloads;

pub use star_core::{AnalyticalModel, ModelConfig, ModelResult, RoutingDiscipline, ValidationRow};
pub use star_graph::{Hypercube, Permutation, StarGraph, Topology, TopologyProperties};
pub use star_routing::{DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm};
pub use star_sim::{SimConfig, SimReport, Simulation, TrafficPattern};
pub use star_workloads::SimBudget;
