//! Compare the adaptive routing algorithms of the paper's Section 3 in the
//! flit-level simulator on a small star graph: plain negative-hop, Nbc (bonus
//! cards), Enhanced-Nbc and a deterministic minimal baseline.
//!
//! ```text
//! cargo run --release --example routing_comparison
//! ```

use std::sync::Arc;

use star_wormhole::workloads::markdown_table;
use star_wormhole::{
    DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm, SimBudget, Simulation,
    StarGraph, TrafficPattern,
};

fn main() {
    let topology = Arc::new(StarGraph::new(4));
    let v = 6;
    let m = 16;
    let algorithms: Vec<(&str, Arc<dyn RoutingAlgorithm>)> = vec![
        ("Enhanced-Nbc", Arc::new(EnhancedNbc::for_topology(topology.as_ref(), v))),
        ("Nbc", Arc::new(Nbc::for_topology(topology.as_ref(), v))),
        ("NHop", Arc::new(NHop::for_topology(topology.as_ref(), v))),
        ("Deterministic", Arc::new(DeterministicMinimal::for_topology(topology.as_ref(), v))),
    ];

    println!("# Routing comparison — S4, V = {v}, M = {m} flits\n");
    let mut rows = Vec::new();
    for &rate in &[0.01, 0.02, 0.03] {
        for (name, routing) in &algorithms {
            let config = SimBudget::Quick.apply(m, rate, 11);
            let report =
                Simulation::new(topology.clone(), routing.clone(), config, TrafficPattern::Uniform)
                    .run();
            rows.push(vec![
                format!("{rate:.3}"),
                (*name).to_string(),
                if report.saturated {
                    "saturated".into()
                } else {
                    format!("{:.1}", report.mean_message_latency)
                },
                format!("{:.3}", report.blocking_probability),
                format!("{:.2}", report.observed_multiplexing),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "traffic rate",
                "algorithm",
                "mean latency",
                "blocking probability",
                "VC multiplexing"
            ],
            &rows
        )
    );
    println!("Enhanced-Nbc keeps latency lowest and saturates last — the reason the paper's");
    println!("analytical model focuses on it.");
}
