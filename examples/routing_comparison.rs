//! Compare the adaptive routing algorithms of the paper's Section 3 in the
//! flit-level simulator on a small star graph: plain negative-hop, Nbc (bonus
//! cards), Enhanced-Nbc and a deterministic minimal baseline — four
//! `Scenario`s differing only in their discipline, answered by the simulator
//! backend through the `SweepRunner`.
//!
//! ```text
//! cargo run --release --example routing_comparison
//! ```

use star_wormhole::workloads::markdown_table;
use star_wormhole::{Discipline, Scenario, SimBackend, SimBudget, SweepRunner, SweepSpec};

fn main() {
    let base = Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(11);
    let rates = vec![0.01, 0.02, 0.03];
    let sweeps: Vec<SweepSpec> = Discipline::ALL
        .iter()
        .map(|&d| SweepSpec::new(d.name(), base.clone().with_discipline(d), rates.clone()))
        .collect();
    let reports = SweepRunner::new().run(&SimBackend::new(SimBudget::Quick), &sweeps);

    println!(
        "# Routing comparison — S4, V = {}, M = {} flits, {} replicates\n",
        base.virtual_channels, base.message_length, base.replicates
    );
    let mut rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        for report in &reports {
            let estimate = &report.estimates[ri];
            let sim = estimate.sim_report().expect("sim backend yields replicate reports");
            rows.push(vec![
                format!("{rate:.3}"),
                report.id.clone(),
                estimate.latency_ci_cell(),
                format!("{:.3}", sim.first().blocking_probability),
                format!("{:.2}", sim.first().observed_multiplexing),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "traffic rate",
                "algorithm",
                "mean latency",
                "blocking probability",
                "VC multiplexing"
            ],
            &rows
        )
    );
    println!("Enhanced-Nbc keeps latency lowest and saturates last — the reason the paper's");
    println!("analytical model focuses on it.");
}
