//! Use the analytical model to predict the saturation rate of `S5` for a grid
//! of virtual-channel counts and message lengths — the kind of design-space
//! exploration the paper argues analytical models are for (evaluating many
//! configurations is cheap, no simulation needed).
//!
//! ```text
//! cargo run --release --example saturation_analysis
//! ```

use star_wormhole::model::saturation_rate;
use star_wormhole::workloads::markdown_table;
use star_wormhole::Scenario;

fn main() {
    println!("# Predicted saturation rate of S5 (messages/node/cycle)\n");
    let mut rows = Vec::new();
    for &v in &[5usize, 6, 8, 9, 12, 16] {
        let mut cells = vec![format!("V = {v}")];
        for &m in &[16usize, 32, 64, 128] {
            let scenario = Scenario::star(5).with_virtual_channels(v).with_message_length(m);
            let config = scenario
                .model_config(0.0)
                .expect("paper-range parameters")
                .expect("star scenarios are modelled");
            let sat = saturation_rate(config, 0.02);
            cells.push(format!("{sat:.4}"));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(&["configuration", "M = 16", "M = 32", "M = 64", "M = 128"], &rows)
    );
    println!("Observations (matching the trends of Figure 1):");
    println!("  * more virtual channels push saturation to higher generation rates;");
    println!("  * doubling the message length roughly halves the saturation rate;");
    println!("  * returns diminish once the adaptive class dwarfs the escape class.");
}
