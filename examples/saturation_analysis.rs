//! Use the analytical model to predict the saturation rate of `S5` for a grid
//! of virtual-channel counts and message lengths — the kind of design-space
//! exploration the paper argues analytical models are for (evaluating many
//! configurations is cheap, no simulation needed) — then repeat the exercise
//! on the other topology families through the generic traversal-spectrum
//! model.
//!
//! ```text
//! cargo run --release --example saturation_analysis
//! ```

use std::sync::Arc;

use star_wormhole::model::{saturation_rate, spectrum_saturation_rate};
use star_wormhole::workloads::markdown_table;
use star_wormhole::{Scenario, TopologyKind, TraversalSpectrum};

fn main() {
    println!("# Predicted saturation rate of S5 (messages/node/cycle)\n");
    let mut rows = Vec::new();
    for &v in &[5usize, 6, 8, 9, 12, 16] {
        let mut cells = vec![format!("V = {v}")];
        for &m in &[16usize, 32, 64, 128] {
            let scenario = Scenario::star(5).with_virtual_channels(v).with_message_length(m);
            let params = scenario
                .model_params(0.0)
                .expect("paper-range parameters")
                .expect("star scenarios are modelled");
            let config = params.star_config(5).expect("paper-range parameters");
            let sat = saturation_rate(config, 0.02);
            cells.push(format!("{sat:.4}"));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(&["configuration", "M = 16", "M = 32", "M = 64", "M = 128"], &rows)
    );
    println!("Observations (matching the trends of Figure 1):");
    println!("  * more virtual channels push saturation to higher generation rates;");
    println!("  * doubling the message length roughly halves the saturation rate;");
    println!("  * returns diminish once the adaptive class dwarfs the escape class.");

    println!("\n# The same question on the plugin families (generic spectrum model, M = 32)\n");
    let mut rows = Vec::new();
    for (kind, size) in
        [(TopologyKind::Hypercube, 7usize), (TopologyKind::Torus, 8), (TopologyKind::Ring, 16)]
    {
        let scenario = kind.scenario(size).with_virtual_channels(6);
        let params = scenario
            .model_params(0.0)
            .expect("smoke sizes fit the generic validator")
            .expect("uniform Enhanced-Nbc scenarios are modelled");
        let spectrum = Arc::new(TraversalSpectrum::new(scenario.topology().as_ref()));
        let sat = spectrum_saturation_rate(params, &spectrum, 0.02);
        rows.push(vec![
            scenario.network_label(),
            format!("{}", scenario.topology().node_count()),
            format!("{sat:.4}"),
        ]);
    }
    println!("{}", markdown_table(&["network", "nodes", "saturation rate (V = 6)"], &rows));
    println!("No closed form was involved above: each rate comes from bisection over");
    println!("the spectrum model built from a BFS census of the topology value.");
}
