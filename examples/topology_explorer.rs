//! Explore the topological properties that motivate the star graph: compare
//! `S_n` against the hypercube with at least as many nodes (degree, diameter,
//! mean distance — the Section 2 argument of the paper) plus the torus and
//! ring plugin families, print the exact distance distribution, run the
//! generic BFS traversal census on every family, and show how much routing
//! adaptivity the topology offers.
//!
//! ```text
//! cargo run --release --example topology_explorer -- [max_n]
//! ```

use star_wormhole::graph::distance::star_distance_distribution;
use star_wormhole::model::DestinationSpectrum;
use star_wormhole::workloads::markdown_table;
use star_wormhole::{Hypercube, StarGraph, TopologyKind, TopologyProperties, TraversalSpectrum};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
        .clamp(3, StarGraph::MAX_TABLED_SYMBOLS);

    println!("# Star graph vs hypercube (vs torus and ring)\n");
    let mut rows = Vec::new();
    for n in 3..=max_n {
        let star = TopologyKind::Star.topology(n);
        let cube = Hypercube::at_least(star.node_count());
        for props in [TopologyProperties::of(star.as_ref()), TopologyProperties::of(&cube)] {
            rows.push(vec![
                props.name,
                props.nodes.to_string(),
                props.degree.to_string(),
                props.diameter.to_string(),
                format!("{:.3}", props.mean_distance),
            ]);
        }
    }
    for (kind, sizes) in [(TopologyKind::Torus, [4usize, 8, 12]), (TopologyKind::Ring, [8, 16, 32])]
    {
        for size in sizes {
            let props = TopologyProperties::of(kind.topology(size).as_ref());
            rows.push(vec![
                props.name,
                props.nodes.to_string(),
                props.degree.to_string(),
                props.diameter.to_string(),
                format!("{:.3}", props.mean_distance),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(&["network", "nodes", "degree", "diameter", "mean distance"], &rows)
    );

    println!("# Generic traversal census (BFS over any `&dyn Topology`)\n");
    let mut rows = Vec::new();
    for (kind, size) in [
        (TopologyKind::Star, 5usize),
        (TopologyKind::Hypercube, 7),
        (TopologyKind::Torus, 8),
        (TopologyKind::Ring, 16),
    ] {
        let spectrum = TraversalSpectrum::new(kind.topology(size).as_ref());
        rows.push(vec![
            spectrum.topology_name().to_string(),
            format!("{}", spectrum.classes().len()),
            format!("{}", spectrum.destination_count()),
            format!("{:.3}", spectrum.mean_distance()),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["network", "traversal classes", "destinations", "mean distance"], &rows)
    );

    println!("# Exact distance distributions of S_n (nodes at each distance)\n");
    for n in 3..=max_n.min(7) {
        let dist = star_distance_distribution(n);
        println!("S{n}: {dist:?}");
    }

    println!("\n# Routing adaptivity (mean number of minimal-path output channels per hop)\n");
    let mut rows = Vec::new();
    for n in 4..=max_n.min(7) {
        let spectrum = DestinationSpectrum::new(n);
        rows.push(vec![
            format!("S{n}"),
            format!("{}", spectrum.classes().len()),
            format!("{:.3}", spectrum.mean_distance()),
            format!("{:.3}", spectrum.mean_adaptivity()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["network", "destination classes", "mean distance", "mean adaptivity"],
            &rows
        )
    );
}
