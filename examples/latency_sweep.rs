//! Latency-vs-load curves from the analytical model for the three
//! virtual-channel configurations of the paper's Figure 1, driven through the
//! `SweepRunner` (warm-started, curves sharded across threads) and rendered
//! as an ASCII plot.  Pass `--with-sim` to overlay a few quick simulation
//! points from the simulator backend.
//!
//! ```text
//! cargo run --release --example latency_sweep -- [--with-sim]
//! ```

use star_wormhole::workloads::{ascii_plot, markdown_table};
use star_wormhole::{
    model, Evaluator as _, ModelBackend, Scenario, SimBackend, SimBudget, SweepRunner, SweepSpec,
};

fn main() {
    let with_sim = std::env::args().any(|a| a == "--with-sim");
    let rates = model::sweep::linspace(0.001, 0.016, 13);

    let sweeps: Vec<SweepSpec> = [6usize, 9, 12]
        .iter()
        .map(|&v| {
            SweepSpec::new(
                format!("V={v}"),
                Scenario::star(5).with_virtual_channels(v),
                rates.clone(),
            )
        })
        .collect();
    let reports = SweepRunner::new().run(&ModelBackend::new(), &sweeps);

    let mut rows = Vec::new();
    for report in &reports {
        for estimate in &report.estimates {
            rows.push(vec![
                format!("{}", report.scenario.virtual_channels),
                format!("{:.4}", estimate.point.traffic_rate),
                estimate.latency_cell(),
            ]);
        }
    }

    println!("# Model latency vs traffic generation rate — S5, M = 32 flits\n");
    println!("{}", markdown_table(&["V", "traffic rate", "model latency"], &rows));
    let plot_series: Vec<(&str, Vec<f64>)> =
        reports.iter().map(|r| (r.id.as_str(), r.latency_curve())).collect();
    println!("{}", ascii_plot("model latency (cycles)", &rates, &plot_series, 64, 18));

    if with_sim {
        println!("quick simulation cross-checks (V = 6, 3 replicates each):");
        let backend = SimBackend::new(SimBudget::Quick);
        let scenario = Scenario::star(5).with_replicates(3).with_seed_base(7);
        for &rate in &[0.004, 0.008, 0.012] {
            let estimate = backend.evaluate(&scenario.at(rate));
            match estimate.latency() {
                None => println!("  λ_g = {rate:.3}: simulator saturated"),
                Some(_) => {
                    println!(
                        "  λ_g = {rate:.3}: simulated latency {} cycles over {} replicates",
                        estimate.latency_stats.pretty(),
                        estimate.replicates()
                    );
                }
            }
        }
    }
}
