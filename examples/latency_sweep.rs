//! Latency-vs-load curves from the analytical model for the three
//! virtual-channel configurations of the paper's Figure 1, rendered as an
//! ASCII plot.  Pass `--with-sim` to overlay a few quick simulation points.
//!
//! ```text
//! cargo run --release --example latency_sweep -- [--with-sim]
//! ```

use star_wormhole::workloads::{ascii_plot, markdown_table, ExperimentPoint, SimBudget};
use star_wormhole::{model, ModelConfig};

fn main() {
    let with_sim = std::env::args().any(|a| a == "--with-sim");
    let rates = model::sweep::linspace(0.001, 0.016, 13);

    let mut series = Vec::new();
    let mut rows = Vec::new();
    for &v in &[6usize, 9, 12] {
        let base = ModelConfig::builder()
            .symbols(5)
            .virtual_channels(v)
            .message_length(32)
            .traffic_rate(0.001)
            .build();
        let points = model::sweep_traffic(base, &rates);
        let curve: Vec<f64> = points
            .iter()
            .map(|p| if p.result.saturated { f64::INFINITY } else { p.result.mean_latency })
            .collect();
        series.push((format!("V={v}"), curve));
        for p in &points {
            rows.push(vec![
                format!("{v}"),
                format!("{:.4}", p.traffic_rate),
                if p.result.saturated {
                    "saturated".into()
                } else {
                    format!("{:.1}", p.result.mean_latency)
                },
            ]);
        }
    }

    println!("# Model latency vs traffic generation rate — S5, M = 32 flits\n");
    println!("{}", markdown_table(&["V", "traffic rate", "model latency"], &rows));
    let plot_series: Vec<(&str, Vec<f64>)> =
        series.iter().map(|(name, data)| (name.as_str(), data.clone())).collect();
    println!("{}", ascii_plot("model latency (cycles)", &rates, &plot_series, 64, 18));

    if with_sim {
        println!("quick simulation cross-checks (V = 6):");
        for &rate in &[0.004, 0.008, 0.012] {
            let point = ExperimentPoint {
                symbols: 5,
                virtual_channels: 6,
                message_length: 32,
                traffic_rate: rate,
            };
            let report = star_wormhole::workloads::run_sim_point(point, SimBudget::Quick, 7);
            if report.saturated {
                println!("  λ_g = {rate:.3}: simulator saturated");
            } else {
                println!(
                    "  λ_g = {rate:.3}: simulated latency {:.1} ± {:.1} cycles",
                    report.mean_message_latency, report.latency_ci95
                );
            }
        }
    }
}
