//! Quickstart: evaluate the analytical model at one operating point and check
//! it against the flit-level simulator — the core workflow of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use star_wormhole::{
    AnalyticalModel, EnhancedNbc, ModelConfig, SimBudget, Simulation, StarGraph,
    TopologyProperties, TrafficPattern,
};

fn main() {
    // The network of the paper's Figure 1: S5, 120 nodes, degree 4.
    let topology = Arc::new(StarGraph::new(5));
    let props = TopologyProperties::of(topology.as_ref());
    println!(
        "network: {} ({} nodes, degree {}, diameter {}, mean distance {:.3})\n",
        props.name, props.nodes, props.degree, props.diameter, props.mean_distance
    );

    // One operating point: V = 6 virtual channels, M = 32 flits, moderate load.
    let config = ModelConfig::builder()
        .symbols(5)
        .virtual_channels(6)
        .message_length(32)
        .traffic_rate(0.006)
        .build();

    // 1. The analytical model (milliseconds).
    let model = AnalyticalModel::new(config).solve();
    println!("analytical model:");
    println!("  mean network latency  S̄  = {:.2} cycles", model.mean_network_latency);
    println!("  source queueing       W_s = {:.2} cycles", model.source_waiting);
    println!("  VC multiplexing       V̄  = {:.3}", model.multiplexing);
    println!("  mean message latency      = {:.2} cycles", model.mean_latency);
    println!("  channel utilisation       = {:.3}", model.channel_utilization);

    // 2. The flit-level simulator at the same point (seconds).
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), config.virtual_channels));
    let sim_config = SimBudget::Quick.apply(config.message_length, config.traffic_rate, 42);
    let report = Simulation::new(topology, routing, sim_config, TrafficPattern::Uniform).run();
    println!(
        "\nflit-level simulation ({} measured messages, {} cycles):",
        report.measured_messages, report.cycles
    );
    println!(
        "  mean message latency      = {:.2} ± {:.2} cycles",
        report.mean_message_latency, report.latency_ci95
    );
    println!("  mean network latency      = {:.2} cycles", report.mean_network_latency);
    println!("  observed multiplexing     = {:.3}", report.observed_multiplexing);

    let error =
        (model.mean_latency - report.mean_message_latency).abs() / report.mean_message_latency;
    println!("\nmodel vs simulation relative error: {:.1}%", error * 100.0);
}
