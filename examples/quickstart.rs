//! Quickstart: evaluate one operating point with both backends of the
//! unified `Evaluator` API — the analytical model and the flit-level
//! simulator — and diff them, which is the core workflow of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use star_wormhole::{
    Evaluator as _, ModelBackend, Scenario, SimBackend, SimBudget, TopologyProperties,
};

fn main() {
    // The network of the paper's Figure 1: S5, 120 nodes, degree 4, with
    // V = 6 virtual channels and M = 32-flit messages at moderate load.
    let scenario = Scenario::star(5);
    let props = TopologyProperties::of(scenario.topology().as_ref());
    println!(
        "network: {} ({} nodes, degree {}, diameter {}, mean distance {:.3})",
        props.name, props.nodes, props.degree, props.diameter, props.mean_distance
    );
    println!("scenario: {}\n", scenario.label());
    let point = scenario.at(0.006);

    // 1. The analytical model (microseconds).
    let model = ModelBackend::new().evaluate(&point);
    let result = model.model_result().expect("model backend yields model results");
    println!("analytical model:");
    println!("  mean network latency  S̄  = {:.2} cycles", result.mean_network_latency);
    println!("  source queueing       W_s = {:.2} cycles", result.source_waiting);
    println!("  VC multiplexing       V̄  = {:.3}", result.multiplexing);
    println!("  mean message latency      = {:.2} cycles", model.mean_latency);
    println!("  channel utilisation       = {:.3}", result.channel_utilization);

    // 2. The flit-level simulator at the same point (seconds): three
    // independently seeded replicates folded into mean ± 95% CI.
    let replicated = scenario.with_replicates(3).with_seed_base(42).at(point.traffic_rate);
    let sim = SimBackend::new(SimBudget::Quick).evaluate(&replicated);
    let report = sim.sim_report().expect("sim backend yields replicate reports");
    println!(
        "\nflit-level simulation ({} replicates, {} measured messages each):",
        report.replicates(),
        report.first().measured_messages
    );
    println!("  mean message latency      = {} cycles", sim.latency_stats.pretty());
    println!("  mean network latency      = {:.2} cycles", report.network_latency.mean);
    println!("  observed multiplexing     = {:.3}", report.first().observed_multiplexing);

    let error = (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency;
    println!("\nmodel vs simulation relative error: {:.1}%", error * 100.0);
}
